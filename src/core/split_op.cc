#include "core/split_op.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "analysis/parallel_model.h"
#include "analysis/shadow_access.h"
#include "kernels/conv2d.h"
#include "kernels/gemm.h"
#include "kernels/im2col.h"
#include "kernels/microkernel.h"
#include "kernels/pool2d.h"
#include "kernels/rowops.h"
#include "kernels/winograd.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/scratch_arena.h"
#include "util/thread_annotations.h"
#include "util/threadpool.h"

namespace scnn {

SplitScheme2d
splitWindowOp2d(const Window2d &win, int64_t ih, int64_t iw,
                const std::vector<int64_t> &out_h_starts,
                const std::vector<int64_t> &out_w_starts,
                InputSplitPolicy policy)
{
    const WindowParams1d hop{win.kh, win.sh, win.ph_b, win.ph_e};
    const WindowParams1d wop{win.kw, win.sw, win.pw_b, win.pw_e};
    SplitScheme2d scheme;
    scheme.h = splitWindowOp(hop, ih, out_h_starts, policy);
    scheme.w = splitWindowOp(wop, iw, out_w_starts, policy);
    return scheme;
}

Window2d
patchWindow(const Window2d &win, const SplitScheme2d &scheme, int hi,
            int wi)
{
    SCNN_CHECK(hi >= 0 && hi < scheme.h.parts() && wi >= 0 &&
                   wi < scheme.w.parts(),
               "patch index out of range");
    const SplitPiece1d &ph = scheme.h.pieces[hi];
    const SplitPiece1d &pw = scheme.w.pieces[wi];
    Window2d local = win;
    local.ph_b = ph.pad_b;
    local.ph_e = ph.pad_e;
    local.pw_b = pw.pad_b;
    local.pw_e = pw.pad_e;
    return local;
}

Tensor
slicePatch(const Tensor &x, const SplitScheme2d &scheme, int hi, int wi)
{
    const SplitPiece1d &ph = scheme.h.pieces[hi];
    const SplitPiece1d &pw = scheme.w.pieces[wi];
    // Slice by padding negatively: crop to [in_start, in_end) on both
    // spatial axes.
    const int64_t ih = x.shape().dim(2);
    const int64_t iw = x.shape().dim(3);
    return pad2d(x, -ph.in_start, ph.in_end - ih, -pw.in_start,
                 pw.in_end - iw);
}

// ---------------------------------------------------------------------------
// Fused zero-copy split execution, v2.
//
// The materializing path pays, per patch: a pad2d input copy, a
// fresh output tensor, and two concat passes — pure memory traffic
// that made a 2x2 split ~2.8x slower than the unsplit conv. v1
// removed those copies but still ran one small GEMM per
// (patch, row-tile) into a bounce buffer: the GEMM's N collapsed to
// a patch width, edge microtiles wasted MACs, B panels were repacked
// per tile, and a copyRow pass moved every output byte twice.
//
// v2 makes the GEMM shape equal to the unsplit convolution's. A work
// item is an output-row *band* of one patch-row group (all patches
// sharing a split-H piece): every patch stages its halo-aware im2col
// columns into one shared column matrix whose columns are ordered by
// parent output position (im2colViewStrided with col_ld = the band's
// full column count, row_step = the parent output width), the matrix
// is packed into B panels once (gemmPackB) and consumed across every
// output-channel block without repacking (gemmPackedAB), and C is
// the parent output itself (ldc = the parent channel stride) — no
// bounce buffer, no copy pass. Weight panels come from a keyed
// per-(layer, split) cache instead of being repacked per call.
//
// Determinism: the work list is a function of shapes alone (the row
// band is a fixed constant), every item writes a disjoint output
// region, and each item's arithmetic is scheduling-independent — so
// outputs are bitwise identical for any thread count. Under the
// scalar microkernel each output element accumulates k ascending
// from a zeroed start exactly like the materializing im2col path, so
// the two produce identical bytes; the fused batched-GEMM Winograd
// path likewise reproduces the materializing Winograd path's bytes.
// ---------------------------------------------------------------------------

std::vector<SplitBandItem>
splitConvBandItems(const SplitScheme1d &h)
{
    std::vector<SplitBandItem> bands;
    for (int hi = 0; hi < h.parts(); ++hi) {
        const SplitPiece1d &ph = h.pieces[static_cast<size_t>(hi)];
        for (int64_t oy0 = 0; oy0 < ph.outLen();
             oy0 += kSplitConvRowBand) {
            const int64_t oy1 =
                std::min(ph.outLen(), oy0 + kSplitConvRowBand);
            bands.push_back({hi, oy0, oy1});
        }
    }
    return bands;
}

namespace {

bool
envMaterialize()
{
    static const bool materialize = [] {
        const char *env = std::getenv("SCNN_SPLIT_EXEC");
        return env != nullptr &&
               std::string_view(env) == "materialize";
    }();
    return materialize;
}

enum class WinoMode { Auto, Off, On };

WinoMode
envSplitWinograd()
{
    static const WinoMode mode = [] {
        const char *env = std::getenv("SCNN_SPLIT_WINOGRAD");
        if (env == nullptr)
            return WinoMode::Auto;
        return std::string_view(env) == "1" ? WinoMode::On
                                            : WinoMode::Off;
    }();
    return mode;
}

uint64_t
hashFloats(const float *p, int64_t count)
{
    // FNV-1a over the raw bytes: cheap relative to a pack (one
    // sequential read, no writes) and exhaustive, so in-place weight
    // updates can never serve stale panels.
    const unsigned char *bytes =
        reinterpret_cast<const unsigned char *>(p);
    const int64_t nbytes = count * int64_t(sizeof(float));
    uint64_t h = 1469598103934665603ull;
    for (int64_t i = 0; i < nbytes; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
    return h;
}

/** A cached packed-panel buffer plus the shared_ptr keeping it alive
 * while a worker reads it (eviction only drops the cache's ref). */
struct PanelRef
{
    std::shared_ptr<std::vector<float>> keepalive;
    const float *panels = nullptr;
};

/** Which packed layout a cache entry holds. One weight tensor can be
 * cached under several kinds at once: the forward GEMM A panels, the
 * Winograd U tensor, and the backward dgrad panels (W^T packed as A,
 * krows x oc) are distinct layouts keyed separately. */
enum class PanelKind { GemmA, Winograd, Dgrad };

/**
 * Keyed LRU cache of packed weight panels, shared process-wide.
 *
 * Key: weight base pointer + panel shape + kernel choice + active
 * microkernel (packed layouts are microkernel-dependent). A full
 * content hash validates every hit. Capacity is a handful of layers;
 * an inference loop over a fixed net hits every call after the first
 * pass, which is what turns "pack once per call" into "pack once per
 * (layer, split)".
 */
class WeightPanelCache
{
public:
    template <typename PackFn>
    PanelRef
    lookupOrPack(const float *w, int64_t wcount, int64_t m, int64_t k,
                 PanelKind kind, int64_t panel_floats, PackFn &&pack)
    {
        const uint64_t h = hashFloats(w, wcount);
        const char *kernel = activeMicrokernel().name;
        MutexLock lock(mu_);
        ++tick_;
        for (auto &e : entries_) {
            if (e.wptr == w && e.m == m && e.k == k &&
                e.kind == kind && e.kernel == kernel) {
                e.tick = tick_;
                if (e.hash == h) {
                    ++hits_;
                    return {e.buf, e.panels};
                }
                // Same layer slot, new contents (in-place update):
                // repack into the existing entry.
                ++misses_;
                pack(e.panels);
                e.hash = h;
                return {e.buf, e.panels};
            }
        }
        ++misses_;
        Entry e;
        e.wptr = w;
        e.m = m;
        e.k = k;
        e.kind = kind;
        e.kernel = kernel;
        e.hash = h;
        e.tick = tick_;
        // Over-allocate so the panel base can be 64-byte aligned for
        // the microkernel's SIMD loads.
        e.buf = std::make_shared<std::vector<float>>(
            static_cast<size_t>(panel_floats + 16));
        auto addr = reinterpret_cast<uintptr_t>(e.buf->data());
        e.panels = reinterpret_cast<float *>((addr + 63) & ~uintptr_t{63});
        pack(e.panels);
        if (entries_.size() >= kCapacity) {
            size_t oldest = 0;
            for (size_t i = 1; i < entries_.size(); ++i)
                if (entries_[i].tick < entries_[oldest].tick)
                    oldest = i;
            ++evictions_;
            entries_[oldest] = std::move(e);
            return {entries_[oldest].buf, entries_[oldest].panels};
        }
        entries_.push_back(std::move(e));
        return {entries_.back().buf, entries_.back().panels};
    }

    SplitWeightCacheStats
    stats()
    {
        MutexLock lock(mu_);
        return {hits_, misses_, evictions_,
                static_cast<int64_t>(entries_.size())};
    }

    void
    clear()
    {
        MutexLock lock(mu_);
        entries_.clear();
        hits_ = misses_ = evictions_ = 0;
        tick_ = 0;
    }

private:
    struct Entry
    {
        const float *wptr = nullptr;
        int64_t m = 0;
        int64_t k = 0;
        PanelKind kind = PanelKind::GemmA;
        const char *kernel = nullptr;
        uint64_t hash = 0;
        std::shared_ptr<std::vector<float>> buf;
        float *panels = nullptr;
        int64_t tick = 0;
    };
    static constexpr size_t kCapacity = 8;

    Mutex mu_;
    std::vector<Entry> entries_ SCNN_GUARDED_BY(mu_);
    int64_t hits_ SCNN_GUARDED_BY(mu_) = 0;
    int64_t misses_ SCNN_GUARDED_BY(mu_) = 0;
    int64_t evictions_ SCNN_GUARDED_BY(mu_) = 0;
    int64_t tick_ SCNN_GUARDED_BY(mu_) = 0;
};

WeightPanelCache &
weightCache()
{
    static WeightPanelCache cache;
    return cache;
}

} // namespace

SplitWeightCacheStats
splitWeightCacheStats()
{
    return weightCache().stats();
}

void
splitWeightCacheClear()
{
    weightCache().clear();
}

Tensor
splitConv2dForwardFused(const Tensor &x, const Tensor &weight,
                        const Tensor &bias, const Window2d &win,
                        const SplitScheme2d &scheme, bool use_winograd)
{
    SCNN_REQUIRE(x.shape().rank() == 4, "split conv input must be NCHW");
    SCNN_REQUIRE(weight.shape().rank() == 4,
                 "split conv weight must be [OC, C, kh, kw]");
    const int64_t n = x.shape().dim(0);
    const int64_t c = x.shape().dim(1);
    const int64_t ih = x.shape().dim(2);
    const int64_t iw = x.shape().dim(3);
    const int64_t oc = weight.shape().dim(0);
    SCNN_REQUIRE(weight.shape().dim(1) == c,
                 "split conv channel mismatch");
    SCNN_REQUIRE(weight.shape().dim(2) == win.kh &&
                     weight.shape().dim(3) == win.kw,
                 "split conv kernel extent mismatch");
    SCNN_REQUIRE(!use_winograd || winogradApplicable(win),
                 "winograd split path needs a 3x3 stride-1 window");
    SCNN_CHECK(scheme.h.parts() > 0 && scheme.w.parts() > 0,
               "empty split scheme");

    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;
    const int64_t krows = c * win.kh * win.kw;
    const bool has_bias = bias.numel() > 0;
    if (has_bias)
        SCNN_REQUIRE(bias.numel() == oc,
                     "split conv bias size mismatch");

    // Validate the scheme geometry once; the band decomposition comes
    // from the shared helper the SA6xx analyzer also models.
    for (int hi = 0; hi < scheme.h.parts(); ++hi) {
        const SplitPiece1d &ph = scheme.h.pieces[hi];
        for (int wi = 0; wi < scheme.w.parts(); ++wi) {
            const SplitPiece1d &pw = scheme.w.pieces[wi];
            const Window2d local = patchWindow(win, scheme, hi, wi);
            SCNN_CHECK(local.outH(ph.inLen()) == ph.outLen() &&
                           local.outW(pw.inLen()) == pw.outLen(),
                       "split scheme geometry mismatch for patch ("
                           << hi << ", " << wi << ")");
        }
    }
    const std::vector<SplitBandItem> bands =
        splitConvBandItems(scheme.h);
    int64_t max_band_rows = 0;
    for (const SplitBandItem &b : bands)
        max_band_rows = std::max(max_band_rows, b.oy1 - b.oy0);

    // Weight panels: packed at most once per (layer, split) — served
    // from the keyed cache on every later call, shared read-only by
    // all workers. In debug builds, assert a hit really skipped the
    // pack (the packs == layers invariant).
#ifndef NDEBUG
    const int64_t packs_before = gemmPackACalls();
    const SplitWeightCacheStats stats_before = splitWeightCacheStats();
#endif
    PanelRef wref;
    if (use_winograd)
        wref = weightCache().lookupOrPack(
            weight.data(), oc * krows, oc, c, PanelKind::Winograd,
            winogradPackedUSize(oc, c), [&](float *dst) {
                winogradPackWeights(weight.data(), oc, c, dst);
            });
    else
        wref = weightCache().lookupOrPack(
            weight.data(), oc * krows, oc, krows, PanelKind::GemmA,
            gemmPackedASize(oc, krows), [&](float *dst) {
                gemmPackA(oc, krows, 1.0f, weight.data(), dst);
            });
#ifndef NDEBUG
    if (splitWeightCacheStats().hits > stats_before.hits)
        SCNN_CHECK(gemmPackACalls() == packs_before,
                   "weight-cache hit must not repack panels");
#endif

    Tensor out = Tensor::uninitialized(Shape{n, oc, out_h, out_w});
    const float *bias_ptr = has_bias ? bias.data() : nullptr;
    const int64_t n_bands = static_cast<int64_t>(bands.size());
    const int64_t max_band_cols = max_band_rows * out_w;
    const int64_t panel_floats = use_winograd
                                     ? winogradPackedUSize(oc, c)
                                     : gemmPackedASize(oc, krows);

    // Shadow-access validation (SCNN_SHADOW_ACCESS=1): model this
    // exact execution and, after the parallel section, check every
    // claim the kernels recorded against the static prediction.
    std::unique_ptr<ShadowSession> shadow;
    if (shadowAccessEnabled()) {
        shadow = std::make_unique<ShadowSession>(
            buildSplitConvPlan(n, c, ih, iw, oc, win, scheme));
        shadow->bind("output", out.data());
        shadow->bind("input", x.data());
        shadow->bind("weight_panels", wref.panels);
    }

    globalPool().parallelFor(n * n_bands, [&](int64_t begin,
                                              int64_t end) {
        auto &warena = ScratchArena::tls();
        auto wguard = warena.scope();
        float *col = nullptr;
        float *pb = nullptr;
        if (!use_winograd) {
            col = warena.alloc(krows * max_band_cols);
            pb = warena.alloc(gemmPackedBSize(krows, max_band_cols));
        }
        for (int64_t i = begin; i < end; ++i) {
            const int64_t in = i / n_bands;
            const SplitBandItem &band =
                bands[static_cast<size_t>(i % n_bands)];
            const SplitPiece1d &ph = scheme.h.pieces[band.hi];
            const float *img = x.data() + in * c * ih * iw;
            float *out_img = out.data() + in * oc * out_h * out_w;

            if (shadow) {
                shadowSetItem(i);
                // The band's whole output claim (both kernel paths
                // write exactly these rows of every channel) and its
                // shared read of the packed panels. Input halo reads
                // are recorded inside the patch kernels.
                shadowRecordSpan(
                    out_img + (ph.out_start + band.oy0) * out_w,
                    {0, oc, out_h * out_w, 1, 0,
                     (band.oy1 - band.oy0) * out_w},
                    true);
                shadowRecord(wref.panels, panel_floats, false);
            }

            if (use_winograd) {
                for (int wi = 0; wi < scheme.w.parts(); ++wi) {
                    const SplitPiece1d &pw = scheme.w.pieces[wi];
                    const PatchView view{ph.in_start, pw.in_start,
                                         ph.inLen(), pw.inLen()};
                    conv2dWinogradPatch(
                        img, c, ih, iw, view,
                        patchWindow(win, scheme, band.hi, wi),
                        wref.panels, oc, bias_ptr, band.oy0 / 2,
                        (band.oy1 + 1) / 2, out_img, out_h, out_w,
                        ph.out_start, pw.out_start);
                }
                continue;
            }

            // Stage every patch's columns of this band into the
            // shared column matrix, ordered by parent output
            // position: window-element row r of output (oy, ox_glob)
            // sits at col[r*nb + (oy - oy0)*out_w + ox_glob].
            const int64_t rows = band.oy1 - band.oy0;
            const int64_t nb = rows * out_w;
            for (int wi = 0; wi < scheme.w.parts(); ++wi) {
                const SplitPiece1d &pw = scheme.w.pieces[wi];
                const PatchView view{ph.in_start, pw.in_start,
                                     ph.inLen(), pw.inLen()};
                im2colViewStrided(
                    img, c, ih, iw, view,
                    patchWindow(win, scheme, band.hi, wi), band.oy0,
                    band.oy1, col + pw.out_start, nb, out_w);
            }
            // One unsplit-shaped GEMM for the whole band: B panels
            // packed once, consumed by every output-channel block, C
            // written straight into the parent output.
            gemmPackB(krows, nb, col, nb, pb);
            float *cbase =
                out_img + (ph.out_start + band.oy0) * out_w;
            const int64_t ldc = out_h * out_w;
            gemmPackedAB(oc, nb, krows, wref.panels, pb, 0.0f, cbase,
                         ldc);
            if (has_bias)
                for (int64_t o = 0; o < oc; ++o) {
                    float *crow = cbase + o * ldc;
                    const float b = bias_ptr[o];
                    for (int64_t j = 0; j < nb; ++j)
                        crow[j] += b;
                }
        }
    });
    if (shadow) {
        const std::vector<Diagnostic> escapes = shadow->check();
        SCNN_CHECK(escapes.empty(),
                   "shadow-access validator: "
                       << escapes.size()
                       << " SA607 escape(s) in split conv; first: "
                       << escapes.front().toString());
    }
    return out;
}

Tensor
splitConv2dForwardMaterialized(const Tensor &x, const Tensor &weight,
                               const Tensor &bias, const Window2d &win,
                               const SplitScheme2d &scheme)
{
    return runSplitOp(x, win, scheme,
                      [&](const Tensor &patch, const Window2d &local) {
                          return conv2dForwardAuto(patch, weight, bias,
                                                   local);
                      });
}

namespace {

/** Debug hook shared by the split dispatchers: statically prove the
 * decomposition race-free before running it. Batch is modeled as
 * min(n, 2) images — image footprints are identical translates, so
 * two prove every inter-image pair (same convention as
 * analyzeParallelExecution). */
void
lintSplitPlan(const ParallelPlan &plan, const char *what)
{
    const std::vector<Diagnostic> diags = analyzeParallelPlan(plan);
    SCNN_CHECK(diags.empty(),
               "parallel-safety lint: " << diags.size()
                                        << " finding(s) in " << what
                                        << "; first: "
                                        << diags.front().toString());
}

} // namespace

Tensor
splitConv2dForward(const Tensor &x, const Tensor &weight,
                   const Tensor &bias, const Window2d &win,
                   const SplitScheme2d &scheme)
{
    if (lintParallelEnabled())
        lintSplitPlan(buildSplitConvPlan(
                          std::min<int64_t>(x.shape().dim(0), 2),
                          x.shape().dim(1), x.shape().dim(2),
                          x.shape().dim(3), weight.shape().dim(0),
                          win, scheme),
                      "split conv");
    if (envMaterialize())
        return splitConv2dForwardMaterialized(x, weight, bias, win,
                                              scheme);
    bool wino = false;
    if (winogradApplicable(win)) {
        switch (envSplitWinograd()) {
        case WinoMode::On:
            wino = true;
            break;
        case WinoMode::Off:
            wino = false;
            break;
        case WinoMode::Auto:
            wino = winogradCostModelWins(x.shape().dim(1),
                                         weight.shape().dim(0));
            break;
        }
    }
    return splitConv2dForwardFused(x, weight, bias, win, scheme, wino);
}

namespace {

/** Shared driver for the fused split-pool paths: one work item per
 * (image, patch), each writing a disjoint block of the parent
 * output through the halo-aware patch kernel. */
template <typename PatchKernel>
Tensor
splitPool2dForwardFusedImpl(const Tensor &x, const Window2d &win,
                            const SplitScheme2d &scheme,
                            PatchKernel &&kernel)
{
    SCNN_REQUIRE(x.shape().rank() == 4, "split pool input must be NCHW");
    SCNN_CHECK(scheme.h.parts() > 0 && scheme.w.parts() > 0,
               "empty split scheme");
    const int64_t n = x.shape().dim(0);
    const int64_t c = x.shape().dim(1);
    const int64_t ih = x.shape().dim(2);
    const int64_t iw = x.shape().dim(3);
    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;
    SCNN_REQUIRE(out_h > 0 && out_w > 0, "empty split pool output");

    const int hp = scheme.h.parts();
    const int wp = scheme.w.parts();
    const int64_t parts = int64_t(hp) * wp;

    // Every output element belongs to exactly one patch block, so the
    // allocation skips its zero-fill; items write disjoint regions.
    Tensor out = Tensor::uninitialized(Shape{n, c, out_h, out_w});

    std::unique_ptr<ShadowSession> shadow;
    if (shadowAccessEnabled()) {
        shadow = std::make_unique<ShadowSession>(
            buildSplitPoolPlan(n, c, ih, iw, win, scheme));
        shadow->bind("output", out.data());
        shadow->bind("input", x.data());
    }

    globalPool().parallelFor(n * parts, [&](int64_t begin,
                                            int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
            if (shadow)
                shadowSetItem(i); // patch kernels record the claims
            const int64_t in = i / parts;
            const int hi = static_cast<int>((i % parts) / wp);
            const int wi = static_cast<int>(i % wp);
            const SplitPiece1d &ph = scheme.h.pieces[hi];
            const SplitPiece1d &pw = scheme.w.pieces[wi];
            const PatchView view{ph.in_start, pw.in_start, ph.inLen(),
                                 pw.inLen()};
            const Window2d local = patchWindow(win, scheme, hi, wi);
            SCNN_CHECK(local.outH(ph.inLen()) == ph.outLen() &&
                           local.outW(pw.inLen()) == pw.outLen(),
                       "split scheme geometry mismatch for patch ("
                           << hi << ", " << wi << ")");
            kernel(x.data() + in * c * ih * iw, c, ih, iw, view,
                   local, out.data() + in * c * out_h * out_w, out_h,
                   out_w, ph.out_start, pw.out_start);
        }
    });
    if (shadow) {
        const std::vector<Diagnostic> escapes = shadow->check();
        SCNN_CHECK(escapes.empty(),
                   "shadow-access validator: "
                       << escapes.size()
                       << " SA607 escape(s) in split pool; first: "
                       << escapes.front().toString());
    }
    return out;
}

} // namespace

Tensor
splitMaxPool2dForwardFused(const Tensor &x, const Window2d &win,
                           const SplitScheme2d &scheme)
{
    return splitPool2dForwardFusedImpl(
        x, win, scheme,
        [](const float *img, int64_t c, int64_t ih, int64_t iw,
           const PatchView &view, const Window2d &local, float *out,
           int64_t out_oh, int64_t out_ow, int64_t oy0, int64_t ox0) {
            maxPool2dPatch(img, c, ih, iw, view, local, out, out_oh,
                           out_ow, oy0, ox0);
        });
}

Tensor
splitAvgPool2dForwardFused(const Tensor &x, const Window2d &win,
                           const SplitScheme2d &scheme)
{
    return splitPool2dForwardFusedImpl(
        x, win, scheme,
        [](const float *img, int64_t c, int64_t ih, int64_t iw,
           const PatchView &view, const Window2d &local, float *out,
           int64_t out_oh, int64_t out_ow, int64_t oy0, int64_t ox0) {
            avgPool2dPatch(img, c, ih, iw, view, local, out, out_oh,
                           out_ow, oy0, ox0);
        });
}

Tensor
splitMaxPool2dForwardMaterialized(const Tensor &x, const Window2d &win,
                                  const SplitScheme2d &scheme)
{
    return runSplitOp(x, win, scheme,
                      [&](const Tensor &patch, const Window2d &local) {
                          std::vector<int64_t> argmax;
                          return maxPool2dForward(patch, local, argmax);
                      });
}

Tensor
splitAvgPool2dForwardMaterialized(const Tensor &x, const Window2d &win,
                                  const SplitScheme2d &scheme)
{
    return runSplitOp(x, win, scheme,
                      [&](const Tensor &patch, const Window2d &local) {
                          return avgPool2dForward(patch, local);
                      });
}

Tensor
splitMaxPool2dForward(const Tensor &x, const Window2d &win,
                      const SplitScheme2d &scheme)
{
    if (lintParallelEnabled())
        lintSplitPlan(buildSplitPoolPlan(
                          std::min<int64_t>(x.shape().dim(0), 2),
                          x.shape().dim(1), x.shape().dim(2),
                          x.shape().dim(3), win, scheme),
                      "split max-pool");
    if (envMaterialize())
        return splitMaxPool2dForwardMaterialized(x, win, scheme);
    return splitMaxPool2dForwardFused(x, win, scheme);
}

Tensor
splitAvgPool2dForward(const Tensor &x, const Window2d &win,
                      const SplitScheme2d &scheme)
{
    if (lintParallelEnabled())
        lintSplitPlan(buildSplitPoolPlan(
                          std::min<int64_t>(x.shape().dim(0), 2),
                          x.shape().dim(1), x.shape().dim(2),
                          x.shape().dim(3), win, scheme),
                      "split avg-pool");
    if (envMaterialize())
        return splitAvgPool2dForwardMaterialized(x, win, scheme);
    return splitAvgPool2dForwardFused(x, win, scheme);
}

// ---------------------------------------------------------------------------
// Fused zero-copy split backward.
//
// The backward twin of the fused forward: gradient patches are
// PatchViews into the parent tensors, never per-patch copies. Images
// fan out across the pool in waves; a worker owns a whole image and
// runs its row bands serially ascending, so every halo scatter-add
// into grad_x happens in a fixed order (the SA609 ordered-accumulation
// contract) and nothing races. Per band, every width patch stages its
// halo-aware im2col columns into one shared column matrix ordered by
// parent output position — exactly the forward staging — and the
// matrix feeds *both* gradient GEMMs:
//
//   wgrad  gw_img[krows x oc] += packA(col) x packB(grad_out band^T)
//          (grad_out^T packed straight from the parent tensor via
//          gemmPackBStrided; beta = 1 chains the image's bands, and
//          per-image partials reduce into grad_w serially in image
//          order — bitwise-identical for any thread count),
//   dgrad  gcol = packA(W^T) x packB(grad_out band), scattered into
//          the parent grad_x through col2imViewStrided's hoisted
//          flank bounds (W^T panels come from the weight-panel cache
//          under a dgrad key).
//
// The materialized path (SCNN_SPLIT_EXEC=materialize) is the pinned
// reference: it replays the identical write order while routing every
// read through bounce copies (sliced patch rectangles, contiguous
// grad_out bands, freshly packed panels), so fused and materialized
// are bitwise-equal by construction and a parity failure isolates the
// zero-copy view machinery.
// ---------------------------------------------------------------------------

namespace {

void
splitConv2dBackwardImpl(const Tensor &x, const Tensor &weight,
                        const Tensor &grad_out, const Window2d &win,
                        const SplitScheme2d &scheme, Tensor &grad_x,
                        Tensor &grad_w, Tensor &grad_b,
                        bool materialize)
{
    SCNN_REQUIRE(x.shape().rank() == 4, "split conv input must be NCHW");
    SCNN_REQUIRE(weight.shape().rank() == 4,
                 "split conv weight must be [OC, C, kh, kw]");
    const int64_t n = x.shape().dim(0);
    const int64_t c = x.shape().dim(1);
    const int64_t ih = x.shape().dim(2);
    const int64_t iw = x.shape().dim(3);
    const int64_t oc = weight.shape().dim(0);
    SCNN_REQUIRE(weight.shape().dim(1) == c,
                 "split conv channel mismatch");
    SCNN_REQUIRE(weight.shape().dim(2) == win.kh &&
                     weight.shape().dim(3) == win.kw,
                 "split conv kernel extent mismatch");
    SCNN_CHECK(scheme.h.parts() > 0 && scheme.w.parts() > 0,
               "empty split scheme");

    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;
    SCNN_CHECK(grad_out.shape() == Shape({n, oc, out_h, out_w}),
               "split conv grad_out shape mismatch: "
                   << grad_out.shape().toString());
    SCNN_CHECK(grad_w.shape() == weight.shape(),
               "grad_w must be pre-shaped like weight");
    const bool has_bias = grad_b.numel() > 0;
    if (has_bias)
        SCNN_REQUIRE(grad_b.numel() == oc,
                     "split conv grad_b size mismatch");

    for (int hi = 0; hi < scheme.h.parts(); ++hi) {
        const SplitPiece1d &ph = scheme.h.pieces[hi];
        for (int wi = 0; wi < scheme.w.parts(); ++wi) {
            const SplitPiece1d &pw = scheme.w.pieces[wi];
            const Window2d local = patchWindow(win, scheme, hi, wi);
            SCNN_CHECK(local.outH(ph.inLen()) == ph.outLen() &&
                           local.outW(pw.inLen()) == pw.outLen(),
                       "split scheme geometry mismatch for patch ("
                           << hi << ", " << wi << ")");
        }
    }

    const int64_t krows = c * win.kh * win.kw;
    const int64_t ospatial = out_h * out_w;
    const int64_t panel_floats = gemmPackedASize(krows, oc);

    const std::vector<SplitBandItem> bands =
        splitConvBandItems(scheme.h);
    const int64_t n_bands = static_cast<int64_t>(bands.size());
    int64_t max_band_rows = 0;
    for (const SplitBandItem &b : bands)
        max_band_rows = std::max(max_band_rows, b.oy1 - b.oy0);
    const int64_t max_band_cols = max_band_rows * out_w;

    grad_x = Tensor(x.shape()); // zero: halo scatters accumulate

    auto &arena = ScratchArena::tls();
    auto guard = arena.scope();

    // dgrad operand: W^T packed A panels, A(i, p) = weight[p*krows+i].
    // Fused serves them from the keyed cache (a dgrad key, so one
    // layer caches its forward and backward layouts side by side);
    // the pinned reference packs fresh every call.
    const float *wt_panels = nullptr;
    PanelRef wref;
    if (materialize) {
        float *fresh = arena.alloc(panel_floats);
        gemmPackAStrided(krows, oc, 1.0f, weight.data(), /*rs=*/1,
                         /*cs=*/krows, fresh);
        wt_panels = fresh;
    } else {
#ifndef NDEBUG
        const int64_t packs_before = gemmPackACalls();
        const SplitWeightCacheStats stats_before =
            splitWeightCacheStats();
#endif
        wref = weightCache().lookupOrPack(
            weight.data(), oc * krows, krows, oc, PanelKind::Dgrad,
            panel_floats, [&](float *dst) {
                gemmPackAStrided(krows, oc, 1.0f, weight.data(),
                                 /*rs=*/1, /*cs=*/krows, dst);
            });
#ifndef NDEBUG
        if (splitWeightCacheStats().hits > stats_before.hits)
            SCNN_CHECK(gemmPackACalls() == packs_before,
                       "weight-cache hit must not repack panels");
#endif
        wt_panels = wref.panels;
    }

    const int64_t wave = std::max<int64_t>(1, globalThreads());
    float *gw_acc = arena.alloc(wave * krows * oc);
    float *gb_acc = has_bias ? arena.alloc(wave * oc) : nullptr;

    int64_t max_ph_len = 0;
    for (const SplitPiece1d &p : scheme.h.pieces)
        max_ph_len = std::max(max_ph_len, p.inLen());
    int64_t max_pw_len = 0;
    for (const SplitPiece1d &p : scheme.w.pieces)
        max_pw_len = std::max(max_pw_len, p.inLen());

    std::unique_ptr<ShadowSession> shadow;
    if (!materialize && shadowAccessEnabled()) {
        shadow = std::make_unique<ShadowSession>(
            buildSplitConvBackwardPlan(n, c, ih, iw, oc, win, scheme));
        shadow->bind("grad_x", grad_x.data());
        shadow->bind("grad_out", grad_out.data());
        shadow->bind("input", x.data());
        shadow->bind("weight_panels", wt_panels);
        shadow->bind("grad_w", grad_w.data());
        if (has_bias)
            shadow->bind("grad_b", grad_b.data());
    }

    for (int64_t w0 = 0; w0 < n; w0 += wave) {
        const int64_t wn = std::min(wave, n - w0);
        globalPool().parallelFor(wn, [&](int64_t begin, int64_t end) {
            auto &warena = ScratchArena::tls();
            auto wguard = warena.scope();
            float *col = warena.alloc(krows * max_band_cols);
            float *gcol = warena.alloc(krows * max_band_cols);
            float *pa_col =
                warena.alloc(gemmPackedASize(krows, max_band_cols));
            float *pb_got =
                warena.alloc(gemmPackedBSize(max_band_cols, oc));
            float *pb_go =
                warena.alloc(gemmPackedBSize(oc, max_band_cols));
            float *patch_buf =
                materialize ? warena.alloc(c * max_ph_len * max_pw_len)
                            : nullptr;
            float *go_buf =
                materialize ? warena.alloc(oc * max_band_cols)
                            : nullptr;
            for (int64_t wi = begin; wi < end; ++wi) {
                const int64_t in = w0 + wi;
                const float *go = grad_out.data() + in * oc * ospatial;
                const float *img = x.data() + in * c * ih * iw;
                float *gx_img = grad_x.data() + in * c * ih * iw;
                float *gw_img = gw_acc + wi * krows * oc;
                for (int64_t bi = 0; bi < n_bands; ++bi) {
                    const SplitBandItem &band =
                        bands[static_cast<size_t>(bi)];
                    const SplitPiece1d &ph =
                        scheme.h.pieces[static_cast<size_t>(band.hi)];
                    const int64_t rows = band.oy1 - band.oy0;
                    const int64_t nb = rows * out_w;
                    const float *go_band =
                        go + (ph.out_start + band.oy0) * out_w;
                    if (shadow) {
                        shadowSetItem(in * n_bands + bi);
                        // The band's grad_out rows of every output
                        // channel and its shared panel read; input
                        // reads and grad_x scatters are recorded
                        // inside the view kernels.
                        shadowRecordSpan(go_band,
                                         {0, oc, ospatial, 1, 0, nb},
                                         false);
                        shadowRecord(wt_panels, panel_floats, false);
                    }
                    for (int pi = 0; pi < scheme.w.parts(); ++pi) {
                        const SplitPiece1d &pw =
                            scheme.w.pieces[static_cast<size_t>(pi)];
                        const PatchView view{ph.in_start, pw.in_start,
                                             ph.inLen(), pw.inLen()};
                        const Window2d local =
                            patchWindow(win, scheme, band.hi, pi);
                        if (!materialize) {
                            im2colViewStrided(img, c, ih, iw, view,
                                              local, band.oy0,
                                              band.oy1,
                                              col + pw.out_start, nb,
                                              out_w);
                            continue;
                        }
                        // Reference: bounce-copy the patch rectangle
                        // and stage from the copy — byte-equal
                        // columns, but no view machinery on the read
                        // side.
                        for (int64_t ic = 0; ic < c; ++ic)
                            for (int64_t y = 0; y < view.ih; ++y)
                                std::memcpy(
                                    patch_buf +
                                        (ic * view.ih + y) * view.iw,
                                    img + ic * ih * iw +
                                        (view.r0 + y) * iw + view.c0,
                                    static_cast<size_t>(view.iw) *
                                        sizeof(float));
                        im2colViewStrided(
                            patch_buf, c, view.ih, view.iw,
                            PatchView::full(view.ih, view.iw), local,
                            band.oy0, band.oy1, col + pw.out_start,
                            nb, out_w);
                    }
                    const float *go_src = go_band;
                    int64_t go_ld = ospatial;
                    if (materialize) {
                        for (int64_t o = 0; o < oc; ++o)
                            std::memcpy(
                                go_buf + o * nb,
                                go_band + o * ospatial,
                                static_cast<size_t>(nb) *
                                    sizeof(float));
                        go_src = go_buf;
                        go_ld = nb;
                    }
                    // wgrad: gw_img (krows x oc, grad_w transposed)
                    // accumulates this band's columns x grad_out^T
                    // product; beta = 1 chains bands ascending.
                    gemmPackA(krows, nb, 1.0f, col, pa_col);
                    gemmPackBStrided(nb, oc, go_src, /*rs=*/1,
                                     /*cs=*/go_ld, pb_got);
                    gemmPackedAB(krows, oc, nb, pa_col, pb_got,
                                 bi == 0 ? 0.0f : 1.0f, gw_img, oc);
                    // dgrad: gcol = W^T x grad_out band, scattered
                    // per width patch in ascending order.
                    gemmPackB(oc, nb, go_src, /*ldb=*/go_ld, pb_go);
                    gemmPackedAB(krows, nb, oc, wt_panels, pb_go,
                                 0.0f, gcol, nb);
                    for (int pi = 0; pi < scheme.w.parts(); ++pi) {
                        const SplitPiece1d &pw =
                            scheme.w.pieces[static_cast<size_t>(pi)];
                        const PatchView view{ph.in_start, pw.in_start,
                                             ph.inLen(), pw.inLen()};
                        col2imViewStrided(
                            gcol + pw.out_start, c, ih, iw, view,
                            patchWindow(win, scheme, band.hi, pi),
                            band.oy0, band.oy1, gx_img, nb, out_w);
                    }
                }
                if (has_bias) {
                    float *gb = gb_acc + wi * oc;
                    if (shadow) {
                        shadowSetItem(n * n_bands + in);
                        shadowRecord(go, oc * ospatial, false);
                    }
                    std::fill(gb, gb + oc, 0.0f);
                    addRowSums(go, oc, ospatial, gb);
                }
            }
        });
        for (int64_t wi = 0; wi < wn; ++wi) {
            const int64_t in = w0 + wi;
            if (shadow) {
                shadowSetItem(n * n_bands + n + in);
                shadowRecord(grad_w.data(), oc * krows, true);
                if (has_bias)
                    shadowRecord(grad_b.data(), oc, true);
            }
            // gw_img is [krows x oc]; grad_w is [oc x krows].
            const float *gw = gw_acc + wi * krows * oc;
            float *dst = grad_w.data();
            for (int64_t o = 0; o < oc; ++o)
                for (int64_t r = 0; r < krows; ++r)
                    dst[o * krows + r] += gw[r * oc + o];
            if (has_bias) {
                const float *gb = gb_acc + wi * oc;
                for (int64_t o = 0; o < oc; ++o)
                    grad_b.at(o) += gb[o];
            }
        }
    }
    if (shadow) {
        const std::vector<Diagnostic> escapes = shadow->check();
        SCNN_CHECK(escapes.empty(),
                   "shadow-access validator: "
                       << escapes.size()
                       << " SA607 escape(s) in split conv backward; "
                          "first: "
                       << escapes.front().toString());
    }
}

} // namespace

void
splitConv2dBackwardFused(const Tensor &x, const Tensor &weight,
                         const Tensor &grad_out, const Window2d &win,
                         const SplitScheme2d &scheme, Tensor &grad_x,
                         Tensor &grad_w, Tensor &grad_b)
{
    splitConv2dBackwardImpl(x, weight, grad_out, win, scheme, grad_x,
                            grad_w, grad_b, /*materialize=*/false);
}

void
splitConv2dBackwardMaterialized(const Tensor &x, const Tensor &weight,
                                const Tensor &grad_out,
                                const Window2d &win,
                                const SplitScheme2d &scheme,
                                Tensor &grad_x, Tensor &grad_w,
                                Tensor &grad_b)
{
    splitConv2dBackwardImpl(x, weight, grad_out, win, scheme, grad_x,
                            grad_w, grad_b, /*materialize=*/true);
}

void
splitConv2dBackward(const Tensor &x, const Tensor &weight,
                    const Tensor &grad_out, const Window2d &win,
                    const SplitScheme2d &scheme, Tensor &grad_x,
                    Tensor &grad_w, Tensor &grad_b)
{
    if (lintParallelEnabled())
        lintSplitPlan(buildSplitConvBackwardPlan(
                          std::min<int64_t>(x.shape().dim(0), 2),
                          x.shape().dim(1), x.shape().dim(2),
                          x.shape().dim(3), weight.shape().dim(0),
                          win, scheme),
                      "split conv backward");
    if (envMaterialize()) {
        splitConv2dBackwardMaterialized(x, weight, grad_out, win,
                                        scheme, grad_x, grad_w,
                                        grad_b);
        return;
    }
    splitConv2dBackwardFused(x, weight, grad_out, win, scheme, grad_x,
                             grad_w, grad_b);
}

namespace {

/**
 * Shared driver for the split pool backward paths: one image per
 * worker, the image's patches scattered serially ascending so halo
 * targets (k > s windows straddling a patch seam) accumulate in a
 * fixed order. @p scatter receives the patch geometry plus the
 * grad_out block to read — either the parent tensor directly (fused)
 * or a bounce copy with identical contents (materialized) — and adds
 * into grad_x through the patch's view; both paths therefore produce
 * identical bytes.
 */
template <typename Scatter>
Tensor
splitPool2dBackwardImpl(const Shape &in_shape, const Tensor &grad_out,
                        const SplitScheme2d &scheme, bool materialize,
                        Scatter &&scatter)
{
    SCNN_REQUIRE(in_shape.rank() == 4, "split pool input must be NCHW");
    SCNN_CHECK(scheme.h.parts() > 0 && scheme.w.parts() > 0,
               "empty split scheme");
    const int64_t n = in_shape.dim(0);
    const int64_t c = in_shape.dim(1);
    const int64_t ih = in_shape.dim(2);
    const int64_t iw = in_shape.dim(3);
    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;
    SCNN_CHECK(grad_out.shape() == Shape({n, c, out_h, out_w}),
               "split pool grad_out shape mismatch: "
                   << grad_out.shape().toString());

    const int hp = scheme.h.parts();
    const int wp = scheme.w.parts();
    const int64_t parts = int64_t(hp) * wp;

    Tensor grad_x(in_shape); // zero: scatter-add target

    std::unique_ptr<ShadowSession> shadow;
    if (!materialize && shadowAccessEnabled()) {
        shadow = std::make_unique<ShadowSession>(
            buildSplitPoolBackwardPlan(n, c, ih, iw, Window2d{},
                                       scheme));
        shadow->bind("grad_x", grad_x.data());
        shadow->bind("grad_out", grad_out.data());
    }

    globalPool().parallelFor(n, [&](int64_t nb, int64_t ne) {
        for (int64_t in = nb; in < ne; ++in) {
            for (int64_t pi = 0; pi < parts; ++pi) {
                const int hi = static_cast<int>(pi / wp);
                const int wi = static_cast<int>(pi % wp);
                const SplitPiece1d &ph = scheme.h.pieces[hi];
                const SplitPiece1d &pw = scheme.w.pieces[wi];
                if (shadow) {
                    shadowSetItem(in * parts + pi);
                    // The patch's input-hull write and output-block
                    // read — the spans the SA6xx backward model
                    // predicts for this item.
                    const int64_t first =
                        ph.in_start * iw + pw.in_start;
                    const int64_t last =
                        (c - 1) * ih * iw +
                        (ph.in_start + ph.inLen() - 1) * iw +
                        pw.in_start + pw.inLen();
                    shadowRecord(grad_x.data() + in * c * ih * iw +
                                     first,
                                 last - first, true);
                    shadowRecordSpan(
                        grad_out.data() + in * c * out_h * out_w +
                            ph.out_start * out_w + pw.out_start,
                        {0, c, out_h * out_w, ph.outLen(), out_w,
                         pw.outLen()},
                        false);
                }
                scatter(grad_x, in, hi, wi);
            }
        }
    });
    if (shadow) {
        const std::vector<Diagnostic> escapes = shadow->check();
        SCNN_CHECK(escapes.empty(),
                   "shadow-access validator: "
                       << escapes.size()
                       << " SA607 escape(s) in split pool backward; "
                          "first: "
                       << escapes.front().toString());
    }
    return grad_x;
}

} // namespace

Tensor
splitMaxPool2dBackwardFused(const Shape &in_shape,
                            const Tensor &grad_out,
                            const std::vector<int64_t> &argmax,
                            const SplitScheme2d &scheme)
{
    SCNN_CHECK(static_cast<int64_t>(argmax.size()) == grad_out.numel(),
               "argmax size mismatch");
    const int64_t c = in_shape.dim(1);
    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;
    return splitPool2dBackwardImpl(
        in_shape, grad_out, scheme, /*materialize=*/false,
        [&](Tensor &gx, int64_t in, int hi, int wi) {
            const SplitPiece1d &ph = scheme.h.pieces[hi];
            const SplitPiece1d &pw = scheme.w.pieces[wi];
            // The forward argmax is absolute into the whole input
            // tensor, and every argmax of an output in this block
            // lies inside the patch's input rectangle (Eqs. 1-2).
            for (int64_t ic = 0; ic < c; ++ic)
                for (int64_t oy = ph.out_start; oy < ph.out_end; ++oy)
                    for (int64_t ox = pw.out_start; ox < pw.out_end;
                         ++ox) {
                        const int64_t oi =
                            ((in * c + ic) * out_h + oy) * out_w + ox;
                        const int64_t idx =
                            argmax[static_cast<size_t>(oi)];
                        if (idx >= 0)
                            gx.at(idx) += grad_out.at(oi);
                    }
        });
}

Tensor
splitMaxPool2dBackwardMaterialized(const Shape &in_shape,
                                   const Tensor &grad_out,
                                   const std::vector<int64_t> &argmax,
                                   const SplitScheme2d &scheme)
{
    SCNN_CHECK(static_cast<int64_t>(argmax.size()) == grad_out.numel(),
               "argmax size mismatch");
    const int64_t c = in_shape.dim(1);
    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;
    return splitPool2dBackwardImpl(
        in_shape, grad_out, scheme, /*materialize=*/true,
        [&](Tensor &gx, int64_t in, int hi, int wi) {
            const SplitPiece1d &ph = scheme.h.pieces[hi];
            const SplitPiece1d &pw = scheme.w.pieces[wi];
            // Reference: bounce-copy the block's grad_out values and
            // argmax slots, then scatter in the identical order.
            const int64_t bh = ph.outLen();
            const int64_t bw = pw.outLen();
            std::vector<float> go_buf(
                static_cast<size_t>(c * bh * bw));
            std::vector<int64_t> am_buf(
                static_cast<size_t>(c * bh * bw));
            int64_t bo = 0;
            for (int64_t ic = 0; ic < c; ++ic)
                for (int64_t oy = ph.out_start; oy < ph.out_end; ++oy)
                    for (int64_t ox = pw.out_start; ox < pw.out_end;
                         ++ox, ++bo) {
                        const int64_t oi =
                            ((in * c + ic) * out_h + oy) * out_w + ox;
                        go_buf[static_cast<size_t>(bo)] =
                            grad_out.at(oi);
                        am_buf[static_cast<size_t>(bo)] =
                            argmax[static_cast<size_t>(oi)];
                    }
            for (int64_t i = 0; i < bo; ++i) {
                const int64_t idx = am_buf[static_cast<size_t>(i)];
                if (idx >= 0)
                    gx.at(idx) += go_buf[static_cast<size_t>(i)];
            }
        });
}

Tensor
splitMaxPool2dBackward(const Shape &in_shape, const Tensor &grad_out,
                       const std::vector<int64_t> &argmax,
                       const SplitScheme2d &scheme)
{
    if (lintParallelEnabled())
        lintSplitPlan(buildSplitPoolBackwardPlan(
                          std::min<int64_t>(in_shape.dim(0), 2),
                          in_shape.dim(1), in_shape.dim(2),
                          in_shape.dim(3), Window2d{}, scheme),
                      "split max-pool backward");
    if (envMaterialize())
        return splitMaxPool2dBackwardMaterialized(in_shape, grad_out,
                                                  argmax, scheme);
    return splitMaxPool2dBackwardFused(in_shape, grad_out, argmax,
                                       scheme);
}

namespace {

/** The avg-pool patch scatter: the exact adjoint of avgPool2dPatch —
 * every in-view tap of an output in the patch block receives
 * grad * 1/(kh*kw) (count_include_pad: out-of-view taps are parent
 * padding and get nothing, exactly as the forward reads them as
 * zero). @p go points at the block's first element; rows are
 * @p go_rs apart and channels @p go_cs apart, so the fused path
 * reads the parent grad_out in place and the reference path reads a
 * contiguous bounce copy — same values, same order, same bytes. */
void
avgPoolPatchScatter(Tensor &gx, const float *go, int64_t go_rs,
                    int64_t go_cs, int64_t in, int64_t c, int64_t ih,
                    int64_t iw, const Window2d &win,
                    const SplitScheme2d &scheme, int hi, int wi)
{
    const SplitPiece1d &ph = scheme.h.pieces[hi];
    const SplitPiece1d &pw = scheme.w.pieces[wi];
    const PatchView view{ph.in_start, pw.in_start, ph.inLen(),
                         pw.inLen()};
    const Window2d local = patchWindow(win, scheme, hi, wi);
    const float inv_area =
        1.0f / static_cast<float>(win.kh * win.kw);
    const int64_t bh = ph.outLen();
    const int64_t bw = pw.outLen();
    for (int64_t ic = 0; ic < c; ++ic) {
        float *chan = gx.data() + (in * c + ic) * ih * iw;
        const float *gchan = go + ic * go_cs;
        for (int64_t oy = 0; oy < bh; ++oy)
            for (int64_t ox = 0; ox < bw; ++ox) {
                const float g = gchan[oy * go_rs + ox] * inv_area;
                for (int64_t ky = 0; ky < local.kh; ++ky) {
                    const int64_t iy =
                        oy * local.sh - local.ph_b + ky;
                    if (iy < 0 || iy >= view.ih)
                        continue;
                    for (int64_t kx = 0; kx < local.kw; ++kx) {
                        const int64_t ix =
                            ox * local.sw - local.pw_b + kx;
                        if (ix >= 0 && ix < view.iw)
                            chan[view.parentOffset(iy, ix, iw)] += g;
                    }
                }
            }
    }
}

} // namespace

Tensor
splitAvgPool2dBackwardFused(const Shape &in_shape,
                            const Tensor &grad_out,
                            const Window2d &win,
                            const SplitScheme2d &scheme)
{
    const int64_t c = in_shape.dim(1);
    const int64_t ih = in_shape.dim(2);
    const int64_t iw = in_shape.dim(3);
    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;
    return splitPool2dBackwardImpl(
        in_shape, grad_out, scheme, /*materialize=*/false,
        [&](Tensor &gx, int64_t in, int hi, int wi) {
            const SplitPiece1d &ph = scheme.h.pieces[hi];
            const SplitPiece1d &pw = scheme.w.pieces[wi];
            // Zero-copy: the scatter reads the block straight out of
            // the parent grad_out at the parent strides.
            const float *go = grad_out.data() +
                              (in * c * out_h + ph.out_start) * out_w +
                              pw.out_start;
            avgPoolPatchScatter(gx, go, /*go_rs=*/out_w,
                                /*go_cs=*/out_h * out_w, in, c, ih,
                                iw, win, scheme, hi, wi);
        });
}

Tensor
splitAvgPool2dBackwardMaterialized(const Shape &in_shape,
                                   const Tensor &grad_out,
                                   const Window2d &win,
                                   const SplitScheme2d &scheme)
{
    const int64_t c = in_shape.dim(1);
    const int64_t ih = in_shape.dim(2);
    const int64_t iw = in_shape.dim(3);
    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;
    return splitPool2dBackwardImpl(
        in_shape, grad_out, scheme, /*materialize=*/true,
        [&](Tensor &gx, int64_t in, int hi, int wi) {
            const SplitPiece1d &ph = scheme.h.pieces[hi];
            const SplitPiece1d &pw = scheme.w.pieces[wi];
            // Reference: bounce-copy the block, scatter from the
            // copy in the identical order.
            const int64_t bh = ph.outLen();
            const int64_t bw = pw.outLen();
            std::vector<float> block(
                static_cast<size_t>(c * bh * bw));
            for (int64_t ic = 0; ic < c; ++ic)
                for (int64_t oy = 0; oy < bh; ++oy)
                    std::memcpy(
                        block.data() + (ic * bh + oy) * bw,
                        grad_out.data() +
                            ((in * c + ic) * out_h + ph.out_start +
                             oy) *
                                out_w +
                            pw.out_start,
                        static_cast<size_t>(bw) * sizeof(float));
            avgPoolPatchScatter(gx, block.data(), /*go_rs=*/bw,
                                /*go_cs=*/bh * bw, in, c, ih, iw, win,
                                scheme, hi, wi);
        });
}

Tensor
splitAvgPool2dBackward(const Shape &in_shape, const Tensor &grad_out,
                       const Window2d &win,
                       const SplitScheme2d &scheme)
{
    if (lintParallelEnabled())
        lintSplitPlan(buildSplitPoolBackwardPlan(
                          std::min<int64_t>(in_shape.dim(0), 2),
                          in_shape.dim(1), in_shape.dim(2),
                          in_shape.dim(3), win, scheme),
                      "split avg-pool backward");
    if (envMaterialize())
        return splitAvgPool2dBackwardMaterialized(in_shape, grad_out,
                                                  win, scheme);
    return splitAvgPool2dBackwardFused(in_shape, grad_out, win,
                                       scheme);
}

} // namespace scnn
