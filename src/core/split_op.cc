#include "core/split_op.h"

#include <cstdlib>
#include <string_view>
#include <vector>

#include "kernels/conv2d.h"
#include "kernels/gemm.h"
#include "kernels/im2col.h"
#include "kernels/microkernel.h"
#include "kernels/pool2d.h"
#include "kernels/rowops.h"
#include "kernels/winograd.h"
#include "util/logging.h"
#include "util/scratch_arena.h"

namespace scnn {

SplitScheme2d
splitWindowOp2d(const Window2d &win, int64_t ih, int64_t iw,
                const std::vector<int64_t> &out_h_starts,
                const std::vector<int64_t> &out_w_starts,
                InputSplitPolicy policy)
{
    const WindowParams1d hop{win.kh, win.sh, win.ph_b, win.ph_e};
    const WindowParams1d wop{win.kw, win.sw, win.pw_b, win.pw_e};
    SplitScheme2d scheme;
    scheme.h = splitWindowOp(hop, ih, out_h_starts, policy);
    scheme.w = splitWindowOp(wop, iw, out_w_starts, policy);
    return scheme;
}

Window2d
patchWindow(const Window2d &win, const SplitScheme2d &scheme, int hi,
            int wi)
{
    SCNN_CHECK(hi >= 0 && hi < scheme.h.parts() && wi >= 0 &&
                   wi < scheme.w.parts(),
               "patch index out of range");
    const SplitPiece1d &ph = scheme.h.pieces[hi];
    const SplitPiece1d &pw = scheme.w.pieces[wi];
    Window2d local = win;
    local.ph_b = ph.pad_b;
    local.ph_e = ph.pad_e;
    local.pw_b = pw.pad_b;
    local.pw_e = pw.pad_e;
    return local;
}

Tensor
slicePatch(const Tensor &x, const SplitScheme2d &scheme, int hi, int wi)
{
    const SplitPiece1d &ph = scheme.h.pieces[hi];
    const SplitPiece1d &pw = scheme.w.pieces[wi];
    // Slice by padding negatively: crop to [in_start, in_end) on both
    // spatial axes.
    const int64_t ih = x.shape().dim(2);
    const int64_t iw = x.shape().dim(3);
    return pad2d(x, -ph.in_start, ph.in_end - ih, -pw.in_start,
                 pw.in_end - iw);
}

// ---------------------------------------------------------------------------
// Fused zero-copy split convolution.
//
// The materializing path pays, per patch: a pad2d input copy, a
// fresh output tensor, and two concat passes — pure memory traffic
// that made a 2x2 split ~2.8x slower than the unsplit conv. The
// fused path eliminates all of it: halo-aware im2col (or the
// Winograd tile loop) reads the parent tensor through PatchView
// strided offsets, the GEMM consumes weight panels packed once per
// call, and results land directly in the parent output. Work is a
// flat list of (image, patch, output-row tile) items, so a 2x2
// split exposes n * 4 * ceil(oh_p / kRowTile) units of parallelism
// instead of 4.
//
// Determinism: the work list is a function of shapes alone (the row
// tile is a fixed constant), every item writes a disjoint output
// region, and each item's arithmetic is scheduling-independent — so
// outputs are bitwise identical for any thread count. Under the
// scalar microkernel the fused im2col+GEMM path also reproduces the
// materializing im2col path's bytes exactly, and the fused Winograd
// path reproduces the materializing Winograd path's bytes exactly
// (same per-element operation sequences).
// ---------------------------------------------------------------------------

namespace {

/** Output rows per work item. Fixed (never derived from the thread
 * count) so the tile decomposition — and with it every byte of the
 * result — is identical at any pool size. Even, so Winograd 2-row
 * tiles never straddle items. */
constexpr int64_t kRowTile = 16;

/** One unit of fused work: a row tile of patch (hi, wi). */
struct TileItem
{
    int hi;
    int wi;
    int64_t oy0;
    int64_t oy1;
};

bool
envMaterialize()
{
    static const bool materialize = [] {
        const char *env = std::getenv("SCNN_SPLIT_EXEC");
        return env != nullptr &&
               std::string_view(env) == "materialize";
    }();
    return materialize;
}

bool
envSplitWinograd()
{
    static const bool wino = [] {
        const char *env = std::getenv("SCNN_SPLIT_WINOGRAD");
        return env != nullptr && std::string_view(env) == "1";
    }();
    return wino;
}

} // namespace

Tensor
splitConv2dForwardFused(const Tensor &x, const Tensor &weight,
                        const Tensor &bias, const Window2d &win,
                        const SplitScheme2d &scheme, bool use_winograd)
{
    SCNN_REQUIRE(x.shape().rank() == 4, "split conv input must be NCHW");
    SCNN_REQUIRE(weight.shape().rank() == 4,
                 "split conv weight must be [OC, C, kh, kw]");
    const int64_t n = x.shape().dim(0);
    const int64_t c = x.shape().dim(1);
    const int64_t ih = x.shape().dim(2);
    const int64_t iw = x.shape().dim(3);
    const int64_t oc = weight.shape().dim(0);
    SCNN_REQUIRE(weight.shape().dim(1) == c,
                 "split conv channel mismatch");
    SCNN_REQUIRE(weight.shape().dim(2) == win.kh &&
                     weight.shape().dim(3) == win.kw,
                 "split conv kernel extent mismatch");
    SCNN_REQUIRE(!use_winograd || winogradApplicable(win),
                 "winograd split path needs a 3x3 stride-1 window");
    SCNN_CHECK(scheme.h.parts() > 0 && scheme.w.parts() > 0,
               "empty split scheme");

    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;
    const int64_t krows = c * win.kh * win.kw;
    const bool has_bias = bias.numel() > 0;
    if (has_bias)
        SCNN_REQUIRE(bias.numel() == oc,
                     "split conv bias size mismatch");

    // Flat work list shared by every image; also the per-item
    // scratch high-water mark.
    std::vector<TileItem> items;
    int64_t max_tile_spatial = 0;
    for (int hi = 0; hi < scheme.h.parts(); ++hi) {
        const SplitPiece1d &ph = scheme.h.pieces[hi];
        for (int wi = 0; wi < scheme.w.parts(); ++wi) {
            const SplitPiece1d &pw = scheme.w.pieces[wi];
            const Window2d local = patchWindow(win, scheme, hi, wi);
            const int64_t oh_p = local.outH(ph.inLen());
            const int64_t ow_p = local.outW(pw.inLen());
            SCNN_CHECK(oh_p == ph.outLen() && ow_p == pw.outLen(),
                       "split scheme geometry mismatch for patch ("
                           << hi << ", " << wi << ")");
            for (int64_t oy0 = 0; oy0 < oh_p; oy0 += kRowTile) {
                const int64_t oy1 = std::min(oh_p, oy0 + kRowTile);
                items.push_back({hi, wi, oy0, oy1});
                max_tile_spatial = std::max(max_tile_spatial,
                                            (oy1 - oy0) * ow_p);
            }
        }
    }

    // Per-layer shared state, packed once in the caller's arena and
    // read concurrently by every worker: the GEMM weight panels (or
    // the Winograd U tiles).
    auto &arena = ScratchArena::tls();
    auto guard = arena.scope();
    float *packed_w = nullptr;
    float *u = nullptr;
    if (use_winograd) {
        u = arena.alloc(oc * c * 16);
        winogradTransformWeights(weight.data(), oc, c, u);
    } else {
        packed_w = arena.alloc(gemmPackedASize(oc, krows));
        gemmPackA(oc, krows, 1.0f, weight.data(), packed_w);
    }

    Tensor out = Tensor::uninitialized(Shape{n, oc, out_h, out_w});
    const float *bias_ptr = has_bias ? bias.data() : nullptr;
    const Microkernel &uk = activeMicrokernel();
    const int64_t n_items = static_cast<int64_t>(items.size());

    globalPool().parallelFor(n * n_items, [&](int64_t begin,
                                              int64_t end) {
        auto &warena = ScratchArena::tls();
        auto wguard = warena.scope();
        float *col = nullptr;
        float *cbuf = nullptr;
        if (!use_winograd) {
            col = warena.alloc(krows * max_tile_spatial);
            cbuf = warena.alloc(oc * max_tile_spatial);
        }
        for (int64_t i = begin; i < end; ++i) {
            const int64_t in = i / n_items;
            const TileItem &it =
                items[static_cast<size_t>(i % n_items)];
            const SplitPiece1d &ph = scheme.h.pieces[it.hi];
            const SplitPiece1d &pw = scheme.w.pieces[it.wi];
            const PatchView view{ph.in_start, pw.in_start, ph.inLen(),
                                 pw.inLen()};
            const Window2d local =
                patchWindow(win, scheme, it.hi, it.wi);
            const float *img = x.data() + in * c * ih * iw;
            float *out_img = out.data() + in * oc * out_h * out_w;
            if (use_winograd) {
                conv2dWinogradPatch(img, c, ih, iw, view, local, u,
                                    oc, bias_ptr, it.oy0 / 2,
                                    (it.oy1 + 1) / 2, out_img, out_h,
                                    out_w, ph.out_start,
                                    pw.out_start);
                continue;
            }
            const int64_t ow_p = pw.outLen();
            const int64_t rows = it.oy1 - it.oy0;
            const int64_t tile_spatial = rows * ow_p;
            im2colView(img, c, ih, iw, view, local, it.oy0, it.oy1,
                       col);
            gemmPackedA(oc, tile_spatial, krows, packed_w, col, 0.0f,
                        cbuf);
            if (has_bias)
                addRowBias(cbuf, oc, tile_spatial, bias.data());
            for (int64_t o = 0; o < oc; ++o) {
                const float *src = cbuf + o * tile_spatial;
                float *dst = out_img + o * out_h * out_w +
                             (ph.out_start + it.oy0) * out_w +
                             pw.out_start;
                for (int64_t r = 0; r < rows; ++r)
                    uk.copyRow(dst + r * out_w, src + r * ow_p,
                               ow_p);
            }
        }
    });
    return out;
}

Tensor
splitConv2dForwardMaterialized(const Tensor &x, const Tensor &weight,
                               const Tensor &bias, const Window2d &win,
                               const SplitScheme2d &scheme)
{
    return runSplitOp(x, win, scheme,
                      [&](const Tensor &patch, const Window2d &local) {
                          return conv2dForwardAuto(patch, weight, bias,
                                                   local);
                      });
}

Tensor
splitConv2dForward(const Tensor &x, const Tensor &weight,
                   const Tensor &bias, const Window2d &win,
                   const SplitScheme2d &scheme)
{
    if (envMaterialize())
        return splitConv2dForwardMaterialized(x, weight, bias, win,
                                              scheme);
    const bool wino = envSplitWinograd() && winogradApplicable(win);
    return splitConv2dForwardFused(x, weight, bias, win, scheme, wino);
}

Tensor
splitMaxPool2dForward(const Tensor &x, const Window2d &win,
                      const SplitScheme2d &scheme)
{
    return runSplitOp(x, win, scheme,
                      [&](const Tensor &patch, const Window2d &local) {
                          std::vector<int64_t> argmax;
                          return maxPool2dForward(patch, local, argmax);
                      });
}

Tensor
splitAvgPool2dForward(const Tensor &x, const Window2d &win,
                      const SplitScheme2d &scheme)
{
    return runSplitOp(x, win, scheme,
                      [&](const Tensor &patch, const Window2d &local) {
                          return avgPool2dForward(patch, local);
                      });
}

} // namespace scnn
