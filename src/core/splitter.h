/**
 * @file
 * Whole-model Split-CNN transformation (Sections 3.2 and 4.1, step 1):
 * given a splitting depth d (fraction of convolutional layers to break
 * apart) and an (h, w) patch grid, rewrite a computation graph so that
 * the prefix up to the join point operates on independent spatial
 * patches: Input -> Slice xN -> per-patch clones (sharing parameters)
 * -> Concat -> unchanged suffix.
 *
 * Split schemes propagate backward from the join point: window ops map
 * their output partition O to an input partition I via Eqs. 1-2;
 * elementwise ops pass partitions through; at forks (residual blocks)
 * the first scheme assigned to a tensor wins and other consumers
 * adapt via the total padding formulas (possibly negative padding,
 * paper footnote 1).
 */
#ifndef SCNN_CORE_SPLITTER_H
#define SCNN_CORE_SPLITTER_H

#include <cstdint>

#include "core/split_scheme.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace scnn {

/** Hyper-parameters of the Split-CNN transformation (Section 5.2). */
struct SplitOptions
{
    /** Fraction of conv layers to split, in [0, 1]. */
    double depth = 0.5;
    /** Patch-grid extents: h x w patches (paper's 2-tuple (h, w)). */
    int splits_h = 2;
    int splits_w = 2;
    /** How to pick I within [lb, ub]. */
    InputSplitPolicy policy = InputSplitPolicy::Center;
    /** Sample the join partition stochastically (Section 3.3). */
    bool stochastic = false;
    /** Wiggle room for stochastic splitting; paper uses 0.2. */
    double omega = 0.2;
};

/** What the transformation actually did. */
struct SplitReport
{
    TensorId join_tensor = kInvalidTensor; ///< cut in the original graph
    int convs_split = 0;       ///< conv layers inside the split region
    int total_convs = 0;
    double achieved_depth = 0.0; ///< convs_split / total_convs
    int patches = 0;             ///< h * w
};

/**
 * Transform @p graph into a Split-CNN.
 *
 * The returned graph has an identical parameter table (patch clones
 * share the original weights), so a ParamStore built for either graph
 * works with both — which is how a Stochastic Split-CNN is trained
 * split and evaluated unsplit.
 *
 * @param graph source model (must carry cut points).
 * @param options split hyper-parameters. depth == 0, or a 1x1 grid,
 *        returns an untransformed copy.
 * @param rng randomness for stochastic splitting; required when
 *        options.stochastic, ignored otherwise.
 * @param report optional transformation summary.
 */
Graph splitCnnTransform(const Graph &graph, const SplitOptions &options,
                        Rng *rng = nullptr, SplitReport *report = nullptr);

/**
 * Pick the cut point whose conv count best matches depth * convCount.
 * Returns the index into graph.cutPoints(), or -1 for "no split"
 * (depth too small to cover even the first cut).
 */
int chooseCutPoint(const Graph &graph, double depth);

} // namespace scnn

#endif // SCNN_CORE_SPLITTER_H
