/**
 * @file
 * Data-parallel training-step simulation: K learners each execute
 * the single-device iteration (from the stream simulator) and
 * aggregate gradients with ring allreduce. Supports the pipelined
 * overlap the paper assumes ("distributed training algorithm usually
 * pipelines backward propagation with gradient aggregation as in
 * [Goyal et al.]"): gradients of later layers are reduced while
 * earlier layers' backward still runs, so the step time is
 * max(T_backward, T_comm) rather than their sum.
 */
#ifndef SCNN_DIST_DATA_PARALLEL_H
#define SCNN_DIST_DATA_PARALLEL_H

#include <cstdint>

#include "dist/ring_allreduce.h"

namespace scnn {

/** Per-step inputs of the data-parallel model. */
struct DataParallelConfig
{
    int learners = 4;
    double t_forward = 0.0;  ///< seconds per local batch
    double t_backward = 0.0; ///< seconds per local batch
    int64_t gradient_bytes = 0;
    double link_bandwidth_bits = 10.0e9;
    double alpha = 0.8;
    /** Overlap backward with gradient aggregation (bucketed). */
    bool pipelined = true;
    /** Number of gradient buckets when pipelining. */
    int buckets = 8;
};

/** Simulated data-parallel step breakdown. */
struct DataParallelResult
{
    double step_time = 0.0; ///< forward + overlapped bwd/comm
    double comm_time = 0.0; ///< total allreduce busy time
    double exposed_comm = 0.0; ///< communication not hidden by bwd
    /** Scaling efficiency vs a communication-free step. */
    double efficiency = 0.0;
};

/**
 * Simulate one synchronous data-parallel step.
 *
 * Pipelined mode reduces gradients bucket by bucket: bucket i becomes
 * ready at (i+1)/buckets of the backward pass and its ring allreduce
 * starts as soon as both the bucket and the link are free.
 * Non-pipelined mode runs one allreduce after the whole backward.
 */
DataParallelResult simulateDataParallelStep(
    const DataParallelConfig &config);

/**
 * Epoch time under the simulated step: (|D| / (K * local_batch))
 * steps per epoch.
 */
double dataParallelEpochTime(const DataParallelConfig &config,
                             int64_t dataset_size, int64_t local_batch);

} // namespace scnn

#endif // SCNN_DIST_DATA_PARALLEL_H
