#include "dist/allreduce_model.h"

#include <algorithm>

#include "util/logging.h"

namespace scnn {

double
allreduceTime(int64_t gradient_bytes, double bandwidth_bits, double alpha)
{
    SCNN_REQUIRE(bandwidth_bits > 0.0 && alpha > 0.0,
                 "invalid bandwidth parameters");
    const double bits = 8.0 * static_cast<double>(gradient_bytes);
    return 2.0 * bits / (alpha * bandwidth_bits);
}

double
epochTime(const DistConfig &config)
{
    SCNN_REQUIRE(config.batch > 0 && config.dataset_size > 0,
                 "invalid dataset/batch");
    const double rounds = static_cast<double>(config.dataset_size) /
                          static_cast<double>(config.batch);
    const double comm = allreduceTime(config.gradient_bytes,
                                      config.bandwidth_bits,
                                      config.alpha);
    return rounds *
           (config.t_forward + std::max(config.t_backward, comm));
}

double
distributedSpeedup(const DistConfig &baseline, const DistConfig &split)
{
    return epochTime(baseline) / epochTime(split);
}

} // namespace scnn
