#include "dist/ring_allreduce.h"

#include <algorithm>

#include "sim/faults.h"
#include "util/logging.h"

namespace scnn {

RingResult
simulateRingAllreduce(const RingConfig &config)
{
    SCNN_REQUIRE(config.learners >= 2, "a ring needs >= 2 learners");
    SCNN_REQUIRE(config.gradient_bytes >= 0, "negative gradient size");
    SCNN_REQUIRE(!config.link_bandwidth_bits.empty(),
                 "no link bandwidths given");
    SCNN_REQUIRE(config.alpha > 0.0 && config.alpha <= 1.0,
                 "alpha must be in (0, 1]");
    SCNN_REQUIRE(config.link_drop_rate >= 0.0 &&
                     config.link_drop_rate <= 1.0,
                 "link_drop_rate must be in [0, 1]");

    const int n = config.learners;
    const double chunk_bits =
        8.0 * static_cast<double>(config.gradient_bytes) / n;

    // Per-step time: every learner forwards one chunk concurrently;
    // the step completes when the slowest link finishes.
    double min_bw = config.link_bandwidth_bits[0];
    for (double bw : config.link_bandwidth_bits) {
        SCNN_REQUIRE(bw > 0.0, "non-positive link bandwidth");
        min_bw = std::min(min_bw, bw);
    }
    const double step_time =
        chunk_bits / (config.alpha * min_bw) + config.step_latency;

    RingResult result;
    result.steps = 2 * (n - 1);
    result.reduce_scatter = (n - 1) * step_time;
    result.allgather = (n - 1) * step_time;
    result.total_time = result.reduce_scatter + result.allgather;

    // A dropped chunk repeats the whole (synchronous) step after an
    // exponential backoff; the zero-rate path above stays untouched
    // so fault-free results are bit-identical to the legacy model.
    if (config.link_drop_rate > 0.0) {
        for (int step = 0; step < result.steps; ++step) {
            double penalty = 0.0;
            int failed = 0;
            while (failed < config.max_step_retries &&
                   faultUniform(config.fault_seed, kFaultStreamRing,
                                static_cast<uint64_t>(step) * 64 +
                                    static_cast<uint64_t>(failed)) <
                       config.link_drop_rate) {
                penalty += step_time + config.retry_backoff *
                                           (1 << failed);
                ++failed;
            }
            result.retries += failed;
            result.retry_time += penalty;
            if (step < n - 1)
                result.reduce_scatter += penalty;
            else
                result.allgather += penalty;
        }
        result.total_time += result.retry_time;
    }
    result.bound = 2.0 * 8.0 *
                   static_cast<double>(config.gradient_bytes) *
                   (n - 1) / (n * config.alpha * min_bw);
    return result;
}

} // namespace scnn
