#include "dist/ring_allreduce.h"

#include <algorithm>

#include "util/logging.h"

namespace scnn {

RingResult
simulateRingAllreduce(const RingConfig &config)
{
    SCNN_REQUIRE(config.learners >= 2, "a ring needs >= 2 learners");
    SCNN_REQUIRE(config.gradient_bytes >= 0, "negative gradient size");
    SCNN_REQUIRE(!config.link_bandwidth_bits.empty(),
                 "no link bandwidths given");
    SCNN_REQUIRE(config.alpha > 0.0 && config.alpha <= 1.0,
                 "alpha must be in (0, 1]");

    const int n = config.learners;
    const double chunk_bits =
        8.0 * static_cast<double>(config.gradient_bytes) / n;

    // Per-step time: every learner forwards one chunk concurrently;
    // the step completes when the slowest link finishes.
    double min_bw = config.link_bandwidth_bits[0];
    for (double bw : config.link_bandwidth_bits) {
        SCNN_REQUIRE(bw > 0.0, "non-positive link bandwidth");
        min_bw = std::min(min_bw, bw);
    }
    const double step_time =
        chunk_bits / (config.alpha * min_bw) + config.step_latency;

    RingResult result;
    result.steps = 2 * (n - 1);
    result.reduce_scatter = (n - 1) * step_time;
    result.allgather = (n - 1) * step_time;
    result.total_time = result.reduce_scatter + result.allgather;
    result.bound = 2.0 * 8.0 *
                   static_cast<double>(config.gradient_bytes) *
                   (n - 1) / (n * config.alpha * min_bw);
    return result;
}

} // namespace scnn
