#include "dist/data_parallel.h"

#include <algorithm>

#include "util/logging.h"

namespace scnn {

DataParallelResult
simulateDataParallelStep(const DataParallelConfig &config)
{
    SCNN_REQUIRE(config.learners >= 1, "need at least one learner");
    SCNN_REQUIRE(config.t_forward >= 0.0 && config.t_backward >= 0.0,
                 "negative compute times");
    SCNN_REQUIRE(config.buckets >= 1, "need at least one bucket");

    DataParallelResult result;
    if (config.learners == 1 || config.gradient_bytes == 0) {
        result.step_time = config.t_forward + config.t_backward;
        result.efficiency = 1.0;
        return result;
    }

    RingConfig ring;
    ring.learners = config.learners;
    ring.link_bandwidth_bits = {config.link_bandwidth_bits};
    ring.alpha = config.alpha;
    ring.step_latency = 0.0;

    double finish = config.t_forward + config.t_backward;
    if (!config.pipelined) {
        ring.gradient_bytes = config.gradient_bytes;
        const double comm = simulateRingAllreduce(ring).total_time;
        result.comm_time = comm;
        result.exposed_comm = comm;
        result.step_time = finish + comm;
    } else {
        // Bucket i's gradients are ready after a fraction of the
        // backward pass; reductions serialize on the link.
        ring.gradient_bytes = config.gradient_bytes / config.buckets;
        const double comm_per_bucket =
            simulateRingAllreduce(ring).total_time;
        double link_free = 0.0;
        for (int i = 0; i < config.buckets; ++i) {
            const double ready =
                config.t_forward +
                config.t_backward * (i + 1) / config.buckets;
            const double start = std::max(ready, link_free);
            link_free = start + comm_per_bucket;
        }
        result.comm_time = config.buckets * comm_per_bucket;
        result.step_time = std::max(finish, link_free);
        result.exposed_comm = result.step_time - finish;
    }
    result.efficiency =
        (config.t_forward + config.t_backward) / result.step_time;
    return result;
}

double
dataParallelEpochTime(const DataParallelConfig &config,
                      int64_t dataset_size, int64_t local_batch)
{
    SCNN_REQUIRE(dataset_size > 0 && local_batch > 0,
                 "invalid dataset/batch");
    const double steps =
        static_cast<double>(dataset_size) /
        (static_cast<double>(config.learners) * local_batch);
    return steps * simulateDataParallelStep(config).step_time;
}

} // namespace scnn
