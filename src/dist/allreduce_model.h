/**
 * @file
 * Analytical distributed-training model (Section 6.4, Figure 11):
 * ring-allreduce gradient aggregation has a bandwidth lower bound of
 * 2|G|/B_min [Patarasuk & Yuan], backward computation pipelines with
 * communication, and the per-epoch time is
 *
 *   T_epoch = |D|/N * (T_forward + max(T_backward, 2|G|/(alpha*B))).
 *
 * Split-CNN accelerates distributed training by enabling a larger
 * per-node batch N, which reduces the number of parameter updates
 * (and therefore allreduce rounds) per epoch.
 */
#ifndef SCNN_DIST_ALLREDUCE_MODEL_H
#define SCNN_DIST_ALLREDUCE_MODEL_H

#include <cstdint>

namespace scnn {

/** Inputs of the epoch-time formula. */
struct DistConfig
{
    int64_t dataset_size = 1'281'167; ///< |D| (ImageNet train split)
    int64_t batch = 64;               ///< per-round global batch N
    double t_forward = 0.0;           ///< seconds per batch
    double t_backward = 0.0;          ///< seconds per batch
    int64_t gradient_bytes = 0;       ///< |G|
    double bandwidth_bits = 10.0e9;   ///< B_min in bits/second
    double alpha = 0.8;               ///< bandwidth utilization
};

/** Allreduce lower bound 2|G|/(alpha*B), in seconds. */
double allreduceTime(int64_t gradient_bytes, double bandwidth_bits,
                     double alpha);

/** The paper's T_epoch formula. */
double epochTime(const DistConfig &config);

/**
 * Speedup of training with batch/time parameters @p split over
 * @p baseline (both evaluated with the same dataset and network).
 */
double distributedSpeedup(const DistConfig &baseline,
                          const DistConfig &split);

} // namespace scnn

#endif // SCNN_DIST_ALLREDUCE_MODEL_H
