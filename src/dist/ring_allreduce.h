/**
 * @file
 * Ring allreduce simulation. The paper's Figure 11 uses the
 * bandwidth lower bound 2|G|/B_min from Patarasuk & Yuan; this module
 * simulates the actual chunked ring algorithm — N-1 reduce-scatter
 * steps followed by N-1 allgather steps, each moving |G|/N bytes per
 * link — so the bound (and its approach to 2|G|/B as N grows) can be
 * verified rather than assumed, and per-step latency effects can be
 * studied.
 */
#ifndef SCNN_DIST_RING_ALLREDUCE_H
#define SCNN_DIST_RING_ALLREDUCE_H

#include <cstdint>
#include <vector>

namespace scnn {

/** Cluster parameters for the ring simulation. */
struct RingConfig
{
    int learners = 4;
    int64_t gradient_bytes = 0; ///< |G|
    /** Per-link bandwidths in bits/s; size 1 = homogeneous, size N =
     *  bandwidth of the link leaving each learner. */
    std::vector<double> link_bandwidth_bits = {10.0e9};
    /** Fixed per-step latency (software + network), seconds. */
    double step_latency = 50e-6;
    /** Bandwidth utilization efficiency (the paper's alpha). */
    double alpha = 0.8;

    // Fault injection (zero drop rate leaves results untouched).
    /** Probability that one attempt of a ring step drops its chunk. */
    double link_drop_rate = 0.0;
    /** Seed for the deterministic drop draws (see sim/faults.h). */
    uint64_t fault_seed = 0;
    /** Failed attempts before a step is forced through. */
    int max_step_retries = 4;
    /** First retry backoff (seconds); doubles per failed attempt. */
    double retry_backoff = 100e-6;
};

/** Result of one simulated allreduce. */
struct RingResult
{
    double total_time = 0.0;      ///< seconds
    double reduce_scatter = 0.0;  ///< first phase
    double allgather = 0.0;       ///< second phase
    int steps = 0;                ///< 2 * (N - 1)
    /** The closed-form bound 2|G|(N-1)/(N * alpha * B_min). */
    double bound = 0.0;
    // Fault accounting (zero without link_drop_rate).
    int retries = 0;         ///< dropped step attempts, total
    double retry_time = 0.0; ///< repeated-step + backoff seconds
};

/**
 * Simulate one ring allreduce of @p config.gradient_bytes.
 *
 * Every step is gated by the slowest link in the ring (all learners
 * move one chunk per step, synchronously), so heterogeneous
 * bandwidth degrades the whole ring to B_min — the reason the bound
 * depends on the *minimum* bandwidth.
 */
RingResult simulateRingAllreduce(const RingConfig &config);

} // namespace scnn

#endif // SCNN_DIST_RING_ALLREDUCE_H
