#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/logging.h"

namespace scnn {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SCNN_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    SCNN_REQUIRE(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, expected "
                            << headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
formatFloat(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
formatBytes(double bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    int u = 0;
    while (bytes >= 1024.0 && u < 4) {
        bytes /= 1024.0;
        ++u;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
    return buf;
}

} // namespace scnn
