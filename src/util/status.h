/**
 * @file
 * Lightweight Status / StatusOr<T> error propagation, used to turn
 * user-facing failure paths (bad configuration, corrupt checkpoints,
 * plans that no longer fit a degraded device) into recoverable
 * errors instead of fatal() exits.
 *
 * Internal invariant violations keep using SCNN_PANIC / SCNN_CHECK:
 * those indicate library bugs, not conditions a caller can recover
 * from.
 */
#ifndef SCNN_UTIL_STATUS_H
#define SCNN_UTIL_STATUS_H

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace scnn {

/** Canonical error space, loosely mirroring the absl taxonomy. */
enum class StatusCode {
    Ok = 0,
    InvalidArgument,    ///< caller supplied a nonsensical value
    NotFound,           ///< a named resource does not exist
    DataLoss,           ///< stored data is truncated or corrupt
    ResourceExhausted,  ///< no fallback fits the available capacity
    FailedPrecondition, ///< inputs are individually valid but disagree
    IoError,            ///< the operating system refused an I/O call
    Internal,           ///< unclassified failure
    DeadlineExceeded,   ///< the request's deadline expired first
    Unavailable,        ///< transient failure; retrying may succeed
};

/** Human-readable name of @p code ("InvalidArgument", ...). */
const char *statusCodeName(StatusCode code);

/**
 * A cheap value type carrying success or an (code, message) error.
 * Default-constructed Status is Ok.
 */
class Status
{
  public:
    Status() = default;
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "InvalidArgument: offload cap must lie in [0, 1]" (or "Ok"). */
    std::string toString() const;

    /**
     * Prefix an error's message with where it happened, keeping the
     * code: s.withContext("loading 'ckpt.bin'") turns
     * "DataLoss: truncated" into "DataLoss: loading 'ckpt.bin':
     * truncated". An Ok status passes through untouched, so the call
     * composes with SCNN_RETURN_IF_ERROR.
     */
    Status withContext(const std::string &context) const
    {
        if (ok())
            return *this;
        return Status(code_, message_.empty()
                                 ? context
                                 : context + ": " + message_);
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

Status invalidArgument(std::string message);
Status notFound(std::string message);
Status dataLoss(std::string message);
Status resourceExhausted(std::string message);
Status failedPrecondition(std::string message);
Status ioError(std::string message);
Status internalError(std::string message);
Status deadlineExceededError(std::string message);
Status unavailable(std::string message);

/**
 * Either a T or the Status explaining why there is no T.
 *
 * value() on an error StatusOr throws std::runtime_error carrying
 * the status text, which reproduces the old fatal() behaviour at
 * call sites that have no recovery strategy (tools, benches).
 */
template <typename T> class StatusOr
{
  public:
    StatusOr(const T &value) : value_(value) {}
    StatusOr(T &&value) : value_(std::move(value)) {}
    StatusOr(Status status) : status_(std::move(status))
    {
        if (status_.ok())
            status_ = internalError(
                "StatusOr constructed from an Ok status");
    }

    bool ok() const { return value_.has_value(); }
    const Status &status() const { return status_; }

    const T &value() const &
    {
        throwIfError();
        return *value_;
    }
    T &value() &
    {
        throwIfError();
        return *value_;
    }
    T &&value() &&
    {
        throwIfError();
        return std::move(*value_);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

  private:
    void throwIfError() const
    {
        if (!value_.has_value())
            throw std::runtime_error(status_.toString());
    }

    Status status_;
    std::optional<T> value_;
};

/** Propagate a non-Ok Status to the caller. */
#define SCNN_RETURN_IF_ERROR(expr)                                   \
    do {                                                             \
        ::scnn::Status scnn_status_ = (expr);                        \
        if (!scnn_status_.ok())                                      \
            return scnn_status_;                                     \
    } while (0)

#define SCNN_STATUS_CONCAT_IMPL(a, b) a##b
#define SCNN_STATUS_CONCAT(a, b) SCNN_STATUS_CONCAT_IMPL(a, b)

/** Unwrap a StatusOr into @p lhs, or propagate its error. */
#define SCNN_ASSIGN_OR_RETURN(lhs, expr)                             \
    auto SCNN_STATUS_CONCAT(scnn_statusor_, __LINE__) = (expr);      \
    if (!SCNN_STATUS_CONCAT(scnn_statusor_, __LINE__).ok())          \
        return SCNN_STATUS_CONCAT(scnn_statusor_, __LINE__)          \
            .status();                                               \
    lhs = std::move(SCNN_STATUS_CONCAT(scnn_statusor_, __LINE__))    \
              .value()

} // namespace scnn

#endif // SCNN_UTIL_STATUS_H
