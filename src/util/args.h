/**
 * @file
 * Minimal command-line argument parser shared by the CLI tool and
 * the benchmark harnesses: positional arguments followed by
 * `--name value` flags (and bare `--name` switches).
 */
#ifndef SCNN_UTIL_ARGS_H
#define SCNN_UTIL_ARGS_H

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace scnn {

/** Parsed argument list with positional/flag accessors. */
class Args
{
  public:
    Args(int argc, const char *const *argv);

    /** @p index-th positional argument, or @p fallback. */
    std::string positional(size_t index,
                           const std::string &fallback = "") const;

    /** Value following `--name`, or @p fallback. */
    std::string flag(const std::string &name,
                     const std::string &fallback) const;

    /** Integer-valued flag. */
    long flagInt(const std::string &name, long fallback) const;

    /** Double-valued flag. */
    double flagDouble(const std::string &name, double fallback) const;

    /** True if `--name` appears at all (switch). */
    bool has(const std::string &name) const;

  private:
    std::vector<std::string> args_;
};

/**
 * Parse "HxW" into a (h, w) pair; InvalidArgument on malformed
 * input.
 */
StatusOr<std::pair<int, int>> parseGrid(const std::string &grid);

} // namespace scnn

#endif // SCNN_UTIL_ARGS_H
