#include "util/status.h"

namespace scnn {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok:
        return "Ok";
    case StatusCode::InvalidArgument:
        return "InvalidArgument";
    case StatusCode::NotFound:
        return "NotFound";
    case StatusCode::DataLoss:
        return "DataLoss";
    case StatusCode::ResourceExhausted:
        return "ResourceExhausted";
    case StatusCode::FailedPrecondition:
        return "FailedPrecondition";
    case StatusCode::IoError:
        return "IoError";
    case StatusCode::Internal:
        return "Internal";
    case StatusCode::DeadlineExceeded:
        return "DeadlineExceeded";
    case StatusCode::Unavailable:
        return "Unavailable";
    }
    return "Unknown";
}

std::string
Status::toString() const
{
    if (ok())
        return "Ok";
    std::string out = statusCodeName(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

Status
invalidArgument(std::string message)
{
    return Status(StatusCode::InvalidArgument, std::move(message));
}

Status
notFound(std::string message)
{
    return Status(StatusCode::NotFound, std::move(message));
}

Status
dataLoss(std::string message)
{
    return Status(StatusCode::DataLoss, std::move(message));
}

Status
resourceExhausted(std::string message)
{
    return Status(StatusCode::ResourceExhausted, std::move(message));
}

Status
failedPrecondition(std::string message)
{
    return Status(StatusCode::FailedPrecondition, std::move(message));
}

Status
ioError(std::string message)
{
    return Status(StatusCode::IoError, std::move(message));
}

Status
internalError(std::string message)
{
    return Status(StatusCode::Internal, std::move(message));
}

Status
deadlineExceededError(std::string message)
{
    return Status(StatusCode::DeadlineExceeded, std::move(message));
}

Status
unavailable(std::string message)
{
    return Status(StatusCode::Unavailable, std::move(message));
}

} // namespace scnn
