/**
 * @file
 * Table-driven CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant),
 * used as the integrity footer of checkpoint files.
 */
#ifndef SCNN_UTIL_CRC32_H
#define SCNN_UTIL_CRC32_H

#include <cstddef>
#include <cstdint>

namespace scnn {

/**
 * Extend a running CRC-32 over @p size bytes at @p data. Start a
 * fresh checksum with @p crc = 0; feed chunks in order for the same
 * result as one shot over the concatenation.
 */
uint32_t crc32Update(uint32_t crc, const void *data, size_t size);

/** One-shot CRC-32 of a buffer. */
inline uint32_t
crc32(const void *data, size_t size)
{
    return crc32Update(0, data, size);
}

} // namespace scnn

#endif // SCNN_UTIL_CRC32_H
