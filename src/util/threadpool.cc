#include "util/threadpool.h"

#include <cstdlib>
#include <memory>

#include "util/logging.h"

namespace scnn {

namespace {

/** Set while a pool worker runs a chunk; nested calls go inline. */
thread_local bool tls_in_worker = false;

int
envThreads()
{
    const char *env = std::getenv("SCNN_THREADS");
    if (!env || !*env)
        return 1;
    const long v = std::strtol(env, nullptr, 10);
    if (v < 1)
        return 1;
    return static_cast<int>(v > 256 ? 256 : v);
}

} // namespace

ThreadPool::ThreadPool(int threads)
    : num_threads_(threads < 1 ? 1 : threads)
{
    if (num_threads_ <= 1)
        return;
    workers_.reserve(static_cast<size_t>(num_threads_));
    for (int i = 0; i < num_threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    tls_in_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<Mutex> lock(mu_);
            work_cv_.wait(lock,
                          [&] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(int64_t n,
                        const std::function<void(int64_t, int64_t)> &fn)
{
    if (n <= 0)
        return;
    if (num_threads_ <= 1 || n == 1 || tls_in_worker) {
        fn(0, n);
        return;
    }

    struct Batch
    {
        std::mutex mu;
        std::condition_variable cv;
        int64_t remaining = 0;
        std::exception_ptr error;
    };
    auto batch = std::make_shared<Batch>();

    const int64_t chunks =
        n < static_cast<int64_t>(num_threads_)
            ? n
            : static_cast<int64_t>(num_threads_);
    batch->remaining = chunks;
    const int64_t base = n / chunks;
    const int64_t rem = n % chunks;
    {
        MutexLock lock(mu_);
        int64_t begin = 0;
        for (int64_t i = 0; i < chunks; ++i) {
            const int64_t end = begin + base + (i < rem ? 1 : 0);
            queue_.push([batch, &fn, begin, end] {
                try {
                    fn(begin, end);
                } catch (...) {
                    std::lock_guard<std::mutex> l(batch->mu);
                    if (!batch->error)
                        batch->error = std::current_exception();
                }
                std::lock_guard<std::mutex> l(batch->mu);
                if (--batch->remaining == 0)
                    batch->cv.notify_all();
            });
            begin = end;
        }
    }
    work_cv_.notify_all();

    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&] { return batch->remaining == 0; });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

} // namespace

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(envThreads());
    return *g_pool;
}

void
setGlobalThreads(int threads)
{
    SCNN_REQUIRE(threads >= 1, "thread count must be >= 1, got "
                                   << threads);
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (g_pool && g_pool->threads() == threads)
        return;
    g_pool = std::make_unique<ThreadPool>(threads);
}

int
globalThreads()
{
    std::lock_guard<std::mutex> lock(g_pool_mu);
    return g_pool ? g_pool->threads() : envThreads();
}

} // namespace scnn
