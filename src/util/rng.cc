#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace scnn {

namespace {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    SCNN_CHECK(lo <= hi, "uniformInt range [" << lo << ", " << hi << "]");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + static_cast<int64_t>(v % span);
}

float
Rng::uniform()
{
    // 24 high bits -> [0, 1) float with full mantissa coverage.
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
}

float
Rng::uniform(float lo, float hi)
{
    return lo + (hi - lo) * uniform();
}

float
Rng::normal()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    float u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-12f);
    u2 = uniform();
    const float mag = std::sqrt(-2.0f * std::log(u1));
    const float two_pi = 6.28318530717958647692f;
    spare_ = mag * std::sin(two_pi * u2);
    haveSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

float
Rng::normal(float mean, float stddev)
{
    return mean + stddev * normal();
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa02bdbf7bb3c0a7ULL);
}

} // namespace scnn
