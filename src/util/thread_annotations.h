/**
 * @file
 * Clang thread-safety-analysis annotation macros (the satellite of
 * the SA6xx parallel-safety suite: the *compiler-checked* side of the
 * locking discipline the static analyzer assumes).
 *
 * The macros expand to Clang `capability` attributes only when both
 * hold:
 *   - the compiler is Clang (GCC has no thread-safety analysis), and
 *   - the build defines SCNN_THREAD_SAFETY (the CMake option of the
 *     same name, which also turns on -Wthread-safety
 *     -Werror=thread-safety).
 * Everywhere else they vanish, so annotated headers stay portable.
 *
 * Standard-library mutexes carry no capability attributes under
 * libstdc++, which would make every annotation vacuous; util/mutex.h
 * provides the annotated `Mutex`/`MutexLock` wrappers the guarded
 * code uses instead.
 */
#ifndef SCNN_UTIL_THREAD_ANNOTATIONS_H
#define SCNN_UTIL_THREAD_ANNOTATIONS_H

#if defined(__clang__) && defined(SCNN_THREAD_SAFETY)
#define SCNN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SCNN_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define SCNN_CAPABILITY(x) SCNN_THREAD_ANNOTATION(capability(x))

/** Marks a RAII type that acquires in its ctor, releases in its dtor. */
#define SCNN_SCOPED_CAPABILITY SCNN_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding the given lock. */
#define SCNN_GUARDED_BY(x) SCNN_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is guarded by the given lock. */
#define SCNN_PT_GUARDED_BY(x) SCNN_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the lock(s) already held. */
#define SCNN_REQUIRES(...) \
    SCNN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the lock(s) and returns holding them. */
#define SCNN_ACQUIRE(...) \
    SCNN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases lock(s) it was called holding. */
#define SCNN_RELEASE(...) \
    SCNN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires the lock on a true return. */
#define SCNN_TRY_ACQUIRE(...) \
    SCNN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function that must NOT be called holding the lock(s). */
#define SCNN_EXCLUDES(...) \
    SCNN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/**
 * Opt a function out of the analysis. Used only where the analysis
 * cannot follow the control flow — condition-variable wait loops
 * release and reacquire the lock inside the wait, which the checker
 * does not model. Each use carries a comment saying why.
 */
#define SCNN_NO_THREAD_SAFETY_ANALYSIS \
    SCNN_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // SCNN_UTIL_THREAD_ANNOTATIONS_H
