/**
 * @file
 * Fixed-size thread pool for the CPU execution engine.
 *
 * The pool's only primitive is a blocking parallelFor over a static
 * partition of [0, n): every chunk is a deterministic function of
 * (n, thread count), so any code whose chunks write disjoint memory
 * produces bitwise-identical results regardless of how many workers
 * execute them. Nested parallelFor calls (e.g. a batch-parallel conv
 * inside a patch-parallel executor) run inline on the calling worker,
 * which makes nesting deadlock-free.
 *
 * The global pool defaults to 1 thread — every chunk then runs inline
 * on the caller and the engine behaves exactly like the serial seed.
 * Override with the SCNN_THREADS environment variable or
 * setGlobalThreads() (the CLI's --threads flag).
 */
#ifndef SCNN_UTIL_THREADPOOL_H
#define SCNN_UTIL_THREADPOOL_H

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace scnn {

class ThreadPool
{
  public:
    /** Pool with @p threads workers; 1 means "run everything inline". */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threads() const { return num_threads_; }

    /**
     * Run @p fn(begin, end) over a static partition of [0, n) and
     * block until every chunk finished. Chunk boundaries depend only
     * on (n, threads()). The first raised exception is rethrown on
     * the calling thread after all chunks complete.
     *
     * Reentrant calls (from inside a chunk) run fn(0, n) inline.
     */
    void parallelFor(int64_t n,
                     const std::function<void(int64_t, int64_t)> &fn);

  private:
    /** Blocks on work_cv_; the wait loop releases/reacquires mu_ in a
     * way the static analysis cannot follow. */
    void workerLoop() SCNN_NO_THREAD_SAFETY_ANALYSIS;

    int num_threads_;
    std::vector<std::thread> workers_;
    Mutex mu_;
    CondVar work_cv_;
    std::queue<std::function<void()>> queue_ SCNN_GUARDED_BY(mu_);
    bool stop_ SCNN_GUARDED_BY(mu_) = false;
};

/**
 * Process-wide pool used by kernels and the executor. Sized from
 * SCNN_THREADS on first use (default 1).
 */
ThreadPool &globalPool();

/** Resize the global pool (e.g. from a --threads flag). */
void setGlobalThreads(int threads);

/** Current global pool size without forcing worker creation. */
int globalThreads();

} // namespace scnn

#endif // SCNN_UTIL_THREADPOOL_H
