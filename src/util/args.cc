#include "util/args.h"

#include <cstdlib>

#include "util/logging.h"

namespace scnn {

Args::Args(int argc, const char *const *argv)
{
    args_.reserve(static_cast<size_t>(argc));
    for (int i = 0; i < argc; ++i)
        args_.emplace_back(argv[i]);
}

std::string
Args::positional(size_t index, const std::string &fallback) const
{
    size_t seen = 0;
    for (const auto &a : args_) {
        if (a.rfind("--", 0) == 0)
            break; // flags terminate the positional section
        if (seen++ == index)
            return a;
    }
    return fallback;
}

std::string
Args::flag(const std::string &name, const std::string &fallback) const
{
    for (size_t i = 0; i < args_.size(); ++i)
        if (args_[i] == "--" + name && i + 1 < args_.size())
            return args_[i + 1];
    return fallback;
}

long
Args::flagInt(const std::string &name, long fallback) const
{
    const std::string v = flag(name, "");
    return v.empty() ? fallback : std::atol(v.c_str());
}

double
Args::flagDouble(const std::string &name, double fallback) const
{
    const std::string v = flag(name, "");
    return v.empty() ? fallback : std::atof(v.c_str());
}

bool
Args::has(const std::string &name) const
{
    for (const auto &a : args_)
        if (a == "--" + name)
            return true;
    return false;
}

StatusOr<std::pair<int, int>>
parseGrid(const std::string &grid)
{
    const auto x = grid.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= grid.size())
        return invalidArgument("grid must look like 2x2, got '" +
                               grid + "'");
    const int h = std::atoi(grid.substr(0, x).c_str());
    const int w = std::atoi(grid.substr(x + 1).c_str());
    if (h < 1 || w < 1)
        return invalidArgument("grid extents must be >= 1, got '" +
                               grid + "'");
    return std::pair<int, int>{h, w};
}

} // namespace scnn
