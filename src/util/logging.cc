#include "util/logging.h"

#include <cstdio>
#include <stdexcept>

namespace scnn {

namespace {

LogLevel g_level = LogLevel::Info;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_level))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throwing instead of abort() lets tests assert on panics; the
    // default terminate handler still kills the process when uncaught.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw std::runtime_error("fatal: " + msg);
}

} // namespace detail

} // namespace scnn
