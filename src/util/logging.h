/**
 * @file
 * Logging and error-reporting primitives for the splitcnn library.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (library bugs), fatal() is for user errors (bad
 * configuration), warn()/inform() are advisory.
 */
#ifndef SCNN_UTIL_LOGGING_H
#define SCNN_UTIL_LOGGING_H

#include <cstdlib>
#include <sstream>
#include <string>

namespace scnn {

/** Severity levels understood by the logger. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Set the minimum severity that is actually printed.
 * Defaults to Info. Thread-unsafe by design (set once at startup).
 */
void setLogLevel(LogLevel level);

/** Current minimum severity. */
LogLevel logLevel();

/** Emit one log line to stderr if @p level passes the filter. */
void logMessage(LogLevel level, const std::string &msg);

namespace detail {

/** Builds a message with ostream syntax and emits it on destruction. */
class LogStream
{
  public:
    LogStream(LogLevel level) : level_(level) {}

    ~LogStream() { logMessage(level_, out_.str()); }

    template <typename T>
    LogStream &
    operator<<(const T &value)
    {
        out_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream out_;
};

/** Print the message and abort(); used for internal bugs. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print the message and exit(1); used for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace detail

} // namespace scnn

#define SCNN_LOG_DEBUG ::scnn::detail::LogStream(::scnn::LogLevel::Debug)
#define SCNN_LOG_INFO ::scnn::detail::LogStream(::scnn::LogLevel::Info)
#define SCNN_LOG_WARN ::scnn::detail::LogStream(::scnn::LogLevel::Warn)
#define SCNN_LOG_ERROR ::scnn::detail::LogStream(::scnn::LogLevel::Error)

/** Abort with a message: something that must never happen happened. */
#define SCNN_PANIC(msg)                                                    \
    do {                                                                   \
        std::ostringstream scnn_panic_os_;                                 \
        scnn_panic_os_ << msg;                                             \
        ::scnn::detail::panicImpl(__FILE__, __LINE__,                      \
                                  scnn_panic_os_.str());                   \
    } while (0)

/** Exit with a message: the caller asked for something unsatisfiable. */
#define SCNN_FATAL(msg)                                                    \
    do {                                                                   \
        std::ostringstream scnn_fatal_os_;                                 \
        scnn_fatal_os_ << msg;                                             \
        ::scnn::detail::fatalImpl(__FILE__, __LINE__,                      \
                                  scnn_fatal_os_.str());                   \
    } while (0)

/** Internal invariant check; compiled in all build types. */
#define SCNN_CHECK(cond, msg)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            SCNN_PANIC("check failed: " #cond ": " << msg);                \
        }                                                                  \
    } while (0)

/** User-input validation check. */
#define SCNN_REQUIRE(cond, msg)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            SCNN_FATAL("requirement failed: " #cond ": " << msg);          \
        }                                                                  \
    } while (0)

#endif // SCNN_UTIL_LOGGING_H
