/**
 * @file
 * Per-thread bump allocator for kernel workspaces.
 *
 * The convolution/pooling kernels need large scratch buffers (im2col
 * columns, packed GEMM panels, Winograd tiles) on every call; heap
 * allocating them each time dominated small-kernel runtime and
 * fragmented the allocator. A ScratchArena hands out uninitialized,
 * 64-byte-aligned float spans from thread-local blocks that persist
 * across calls, so steady-state kernels allocate nothing.
 *
 * Usage:
 *     auto &arena = ScratchArena::tls();
 *     auto scope = arena.scope();            // rewinds on destruction
 *     float *col = arena.alloc(krows * ospatial);
 *
 * Allocations are valid until their enclosing scope is destroyed;
 * scopes nest. The arena is not thread-safe by design — tls() gives
 * every thread (pool workers included) its own instance. A span
 * allocated before a parallelFor may be *read* concurrently by every
 * worker while the owning scope is alive (the split executor shares
 * packed GEMM weight panels and Winograd U tiles this way); only
 * allocation and writes are single-thread. The 64-byte alignment
 * makes every span safe for aligned SIMD loads (the AVX2 microkernel
 * reads packed panels with _mm256_load_ps).
 */
#ifndef SCNN_UTIL_SCRATCH_ARENA_H
#define SCNN_UTIL_SCRATCH_ARENA_H

#include <cstdint>
#include <memory>
#include <vector>

namespace scnn {

class ScratchArena
{
  public:
    ScratchArena() = default;
    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /** Uninitialized span of @p n floats, 64-byte aligned. */
    float *alloc(int64_t n);

    /** RAII rewind point; destroying it frees everything allocated
     * after scope() was called (capacity is retained for reuse). */
    class Scope
    {
      public:
        explicit Scope(ScratchArena &arena)
            : arena_(arena), block_(arena.current_block_),
              used_(arena.current_used_)
        {
        }
        ~Scope()
        {
            arena_.current_block_ = block_;
            arena_.current_used_ = used_;
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        ScratchArena &arena_;
        size_t block_;
        int64_t used_;
    };

    Scope scope() { return Scope(*this); }

    /** Total bytes reserved across all blocks (diagnostics). */
    int64_t capacityBytes() const;

    /** The calling thread's arena. */
    static ScratchArena &tls();

  private:
    struct Block
    {
        std::unique_ptr<float[]> data;
        float *base = nullptr; ///< 64-byte-aligned start within data
        int64_t capacity = 0;  ///< floats available from base
    };

    std::vector<Block> blocks_;
    size_t current_block_ = 0; ///< index of the block being bumped
    int64_t current_used_ = 0; ///< floats used in the current block

    friend class Scope;
};

} // namespace scnn

#endif // SCNN_UTIL_SCRATCH_ARENA_H
