/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic behaviour in the library (weight init, data synthesis,
 * stochastic splitting) flows through Rng so experiments are exactly
 * reproducible from a seed.
 */
#ifndef SCNN_UTIL_RNG_H
#define SCNN_UTIL_RNG_H

#include <cstdint>

namespace scnn {

/**
 * A small, fast, seedable generator (xoshiro256**).
 *
 * Not cryptographic. Copyable; copies continue independent streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform float in [0, 1). */
    float uniform();

    /** Uniform float in [lo, hi). */
    float uniform(float lo, float hi);

    /** Standard normal via Box-Muller. */
    float normal();

    /** Normal with the given mean and standard deviation. */
    float normal(float mean, float stddev);

    /** Fork a child generator with a decorrelated state. */
    Rng fork();

  private:
    uint64_t s_[4];
    bool haveSpare_ = false;
    float spare_ = 0.0f;
};

} // namespace scnn

#endif // SCNN_UTIL_RNG_H
