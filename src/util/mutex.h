/**
 * @file
 * Annotated mutex wrappers for Clang thread-safety analysis.
 *
 * libstdc++'s std::mutex carries no capability attributes, so
 * `SCNN_GUARDED_BY(mu_)` on a std::mutex member is vacuous: the
 * analysis can never see an acquire. These thin wrappers forward to
 * the standard types but expose lock/unlock with ACQUIRE/RELEASE
 * attributes, making every GUARDED_BY in the codebase enforceable
 * under -Wthread-safety. In non-analysis builds they compile to the
 * standard types with zero overhead.
 */
#ifndef SCNN_UTIL_MUTEX_H
#define SCNN_UTIL_MUTEX_H

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace scnn {

/** std::mutex with capability annotations. */
class SCNN_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() SCNN_ACQUIRE() { mu_.lock(); }
    void unlock() SCNN_RELEASE() { mu_.unlock(); }
    bool try_lock() SCNN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /**
     * The underlying std::mutex, for std::condition_variable_any
     * waits. Callers must already hold the capability; waiting
     * temporarily releases it in a way the analysis cannot follow,
     * so wait loops are marked SCNN_NO_THREAD_SAFETY_ANALYSIS.
     */
    std::mutex &native() SCNN_REQUIRES(this) { return mu_; }

  private:
    std::mutex mu_;
};

/** std::lock_guard-alike that the analysis understands. */
class SCNN_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) SCNN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() SCNN_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable usable with Mutex. condition_variable_any works
 * with any lockable, so Mutex itself (which satisfies BasicLockable)
 * can be passed straight to wait().
 */
using CondVar = std::condition_variable_any;

} // namespace scnn

#endif // SCNN_UTIL_MUTEX_H
