#include "util/scratch_arena.h"

#include "util/logging.h"

namespace scnn {

namespace {

/** Floats per 64-byte cache line; allocations are rounded to this. */
constexpr int64_t kAlignFloats = 16;
/** First block holds 64 KiB of floats; blocks double thereafter. */
constexpr int64_t kMinBlockFloats = int64_t(1) << 14;

} // namespace

float *
ScratchArena::alloc(int64_t n)
{
    SCNN_REQUIRE(n >= 0, "arena alloc of negative size " << n);
    const int64_t need =
        ((n < 1 ? 1 : n) + kAlignFloats - 1) & ~(kAlignFloats - 1);

    while (current_block_ < blocks_.size()) {
        Block &b = blocks_[current_block_];
        if (b.capacity - current_used_ >= need) {
            float *p = b.base + current_used_;
            current_used_ += need;
            return p;
        }
        ++current_block_;
        current_used_ = 0;
    }

    int64_t cap = blocks_.empty() ? kMinBlockFloats
                                  : blocks_.back().capacity * 2;
    if (cap < need)
        cap = need;
    Block b;
    // Over-allocate one line and keep a manually aligned base so
    // every span is 64-byte aligned regardless of operator new[].
    b.data = std::make_unique<float[]>(
        static_cast<size_t>(cap + kAlignFloats));
    const auto addr = reinterpret_cast<uintptr_t>(b.data.get());
    b.base = b.data.get() +
             (((64 - (addr & 63)) & 63) / sizeof(float));
    b.capacity = cap;
    blocks_.push_back(std::move(b));
    current_block_ = blocks_.size() - 1;
    current_used_ = need;
    return blocks_.back().base;
}

int64_t
ScratchArena::capacityBytes() const
{
    int64_t total = 0;
    for (const auto &b : blocks_)
        total += (b.capacity + kAlignFloats) *
                 static_cast<int64_t>(sizeof(float));
    return total;
}

ScratchArena &
ScratchArena::tls()
{
    static thread_local ScratchArena arena;
    return arena;
}

} // namespace scnn
