/**
 * @file
 * Small ASCII table / CSV emitter used by the benchmark harnesses to
 * print paper-figure rows in a uniform format.
 */
#ifndef SCNN_UTIL_TABLE_H
#define SCNN_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace scnn {

/**
 * Column-aligned table builder.
 *
 * Usage:
 * @code
 *   Table t({"layer", "bytes", "time"});
 *   t.addRow({"conv1", "12.3", "0.004"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    size_t rowCount() const { return rows_.size(); }

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (headers + rows). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style float formatting into a std::string. */
std::string formatFloat(double value, int precision = 3);

/** Human-readable byte count, e.g. "1.50 GB". */
std::string formatBytes(double bytes);

} // namespace scnn

#endif // SCNN_UTIL_TABLE_H
