/**
 * @file
 * Tensor shape: an ordered list of dimension extents.
 */
#ifndef SCNN_TENSOR_SHAPE_H
#define SCNN_TENSOR_SHAPE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace scnn {

/**
 * Shape of a dense tensor.
 *
 * Dimensions are ordered outermost-first; for image tensors the library
 * convention is NCHW (batch, channels, height, width).
 */
class Shape
{
  public:
    Shape() = default;

    /** Construct from an explicit dimension list. */
    Shape(std::initializer_list<int64_t> dims);

    /** Construct from a vector of dimensions. */
    explicit Shape(std::vector<int64_t> dims);

    /** Number of dimensions (rank). */
    int rank() const { return static_cast<int>(dims_.size()); }

    /** Extent of dimension @p d; negative d counts from the back. */
    int64_t dim(int d) const;

    /** Mutable access for shape surgery (e.g. split transforms). */
    void setDim(int d, int64_t value);

    /** Total number of elements. */
    int64_t numel() const;

    /** Row-major strides (innermost stride == 1). */
    std::vector<int64_t> strides() const;

    /** All extents. */
    const std::vector<int64_t> &dims() const { return dims_; }

    bool operator==(const Shape &other) const = default;

    /** e.g. "[64, 3, 32, 32]". */
    std::string toString() const;

  private:
    std::vector<int64_t> dims_;
};

} // namespace scnn

#endif // SCNN_TENSOR_SHAPE_H
