/**
 * @file
 * Free functions on tensors needed by the Split-CNN transformation and
 * the execution engine: spatial split, concatenation, 2-D padding
 * (including negative padding == cropping), and elementwise helpers.
 */
#ifndef SCNN_TENSOR_TENSOR_OPS_H
#define SCNN_TENSOR_TENSOR_OPS_H

#include <vector>

#include "tensor/tensor.h"

namespace scnn {

/**
 * Partition @p t along dimension @p dim following the paper's
 * Split_D(T, (s_0, ..., s_{N-1})) notation: @p starts lists the index
 * of the first element of each part; part i covers
 * [starts[i], starts[i+1]) with starts[N] == extent.
 *
 * Requires starts[0] == 0 and strictly increasing starts.
 */
std::vector<Tensor> splitDim(const Tensor &t, int dim,
                             const std::vector<int64_t> &starts);

/**
 * Concatenate @p parts along @p dim ([T_0, ..., T_n]_D in the paper).
 * All other dimensions must agree.
 */
Tensor concatDim(const std::vector<Tensor> &parts, int dim);

/**
 * Zero-pad (or crop, when negative) a rank-4 NCHW tensor.
 *
 * @param t input tensor.
 * @param ph_b padding before (top of) the H dimension.
 * @param ph_e padding after (bottom of) the H dimension.
 * @param pw_b padding before (left of) the W dimension.
 * @param pw_e padding after (right of) the W dimension.
 *
 * Negative values crop instead of pad, implementing the paper's
 * footnote-1 "negative padding" semantics.
 */
Tensor pad2d(const Tensor &t, int64_t ph_b, int64_t ph_e, int64_t pw_b,
             int64_t pw_e);

/** out += scale * a; shapes must match. */
void axpy(float scale, const Tensor &a, Tensor &out);

/**
 * Windowed scatter-accumulate: dst[n, c, h0+y, w0+x] += src[n, c, y, x]
 * for every element of the rank-4 NCHW @p src. The adjoint of a
 * spatial crop — the Slice backward accumulates a patch gradient into
 * its parent slot without materializing a full-canvas intermediate
 * (src must fit inside dst at offset (h0, w0)).
 */
void addWindow2d(const Tensor &src, int64_t h0, int64_t w0,
                 Tensor &dst);

/** Elementwise a + b. */
Tensor add(const Tensor &a, const Tensor &b);

/** Max |a - b| over all elements; shapes must match. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

/** True iff shapes match and max |a-b| <= tol. */
bool allClose(const Tensor &a, const Tensor &b, float tol = 1e-5f);

} // namespace scnn

#endif // SCNN_TENSOR_TENSOR_OPS_H
