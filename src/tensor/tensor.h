/**
 * @file
 * Dense float32 tensor with value semantics.
 */
#ifndef SCNN_TENSOR_TENSOR_H
#define SCNN_TENSOR_TENSOR_H

#include <cstdint>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace scnn {

/**
 * A dense, contiguous, row-major float32 tensor.
 *
 * Tensors have value semantics: copying a Tensor deep-copies its
 * storage. The real CPU execution engine uses this type; the HMMS
 * planner reasons only about sizes (TSOs) and never touches data.
 */
class Tensor
{
  public:
    /** Empty (rank-0, zero elements) tensor. */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Tensor of the given shape filled with @p value. */
    Tensor(Shape shape, float value);

    /** Shape accessor. */
    const Shape &shape() const { return shape_; }

    /** Total element count. */
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }

    /** Raw storage. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Linear element access with bounds checks. */
    float &at(int64_t i);
    float at(int64_t i) const;

    /** 4-D element access (NCHW); requires rank == 4. */
    float &at4(int64_t n, int64_t c, int64_t h, int64_t w);
    float at4(int64_t n, int64_t c, int64_t h, int64_t w) const;

    /** Set every element to @p value. */
    void fill(float value);

    /** Fill with N(mean, stddev) samples. */
    void fillNormal(Rng &rng, float mean, float stddev);

    /** Fill with U[lo, hi) samples. */
    void fillUniform(Rng &rng, float lo, float hi);

    /** Reinterpret as a different shape with the same numel. */
    Tensor reshape(Shape new_shape) const;

    /** Size of the underlying storage in bytes. */
    int64_t bytes() const { return numel() * int64_t(sizeof(float)); }

  private:
    Shape shape_;
    std::vector<float> data_;
};

} // namespace scnn

#endif // SCNN_TENSOR_TENSOR_H
