/**
 * @file
 * Dense float32 tensor with value semantics.
 */
#ifndef SCNN_TENSOR_TENSOR_H
#define SCNN_TENSOR_TENSOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace scnn {

/**
 * Allocator adaptor that default-initializes (i.e. leaves floats
 * uninitialized) on resize instead of zero-filling. Explicit
 * value-constructions like vector(n, 0.0f) still zero-fill, so
 * Tensor's zero-init constructors keep their semantics while
 * Tensor::uninitialized() skips the fill for outputs that are
 * fully overwritten.
 */
template <typename T, typename A = std::allocator<T>>
class DefaultInitAllocator : public A
{
    using Traits = std::allocator_traits<A>;

  public:
    template <typename U>
    struct rebind
    {
        using other = DefaultInitAllocator<
            U, typename Traits::template rebind_alloc<U>>;
    };

    using A::A;

    template <typename U>
    void
    construct(U *ptr) noexcept(
        std::is_nothrow_default_constructible_v<U>)
    {
        ::new (static_cast<void *>(ptr)) U;
    }

    template <typename U, typename... Args>
    void
    construct(U *ptr, Args &&...args)
    {
        Traits::construct(static_cast<A &>(*this), ptr,
                          std::forward<Args>(args)...);
    }
};

/** Tensor storage: zero-fills only when asked to. */
using TensorBuffer = std::vector<float, DefaultInitAllocator<float>>;

/**
 * A dense, contiguous, row-major float32 tensor.
 *
 * Tensors have value semantics: copying a Tensor deep-copies its
 * storage. The real CPU execution engine uses this type; the HMMS
 * planner reasons only about sizes (TSOs) and never touches data.
 */
class Tensor
{
  public:
    /** Empty (rank-0, zero elements) tensor. */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Tensor of the given shape filled with @p value. */
    Tensor(Shape shape, float value);

    /**
     * Tensor whose storage is left uninitialized. Only for outputs
     * that every kernel path fully overwrites before reading.
     */
    static Tensor uninitialized(Shape shape);

    /** Shape accessor. */
    const Shape &shape() const { return shape_; }

    /** Total element count. */
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }

    /** Raw storage. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Linear element access with bounds checks. */
    float &at(int64_t i);
    float at(int64_t i) const;

    /** 4-D element access (NCHW); requires rank == 4. */
    float &at4(int64_t n, int64_t c, int64_t h, int64_t w);
    float at4(int64_t n, int64_t c, int64_t h, int64_t w) const;

    /** Set every element to @p value. */
    void fill(float value);

    /** Fill with N(mean, stddev) samples. */
    void fillNormal(Rng &rng, float mean, float stddev);

    /** Fill with U[lo, hi) samples. */
    void fillUniform(Rng &rng, float lo, float hi);

    /** Reinterpret as a different shape with the same numel. */
    Tensor reshape(Shape new_shape) const &;

    /** Move-based reshape: steals this tensor's storage (no copy). */
    Tensor reshape(Shape new_shape) &&;

    /** Size of the underlying storage in bytes. */
    int64_t bytes() const { return numel() * int64_t(sizeof(float)); }

  private:
    Shape shape_;
    TensorBuffer data_;
};

} // namespace scnn

#endif // SCNN_TENSOR_TENSOR_H
