#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace scnn {

namespace {

/** Collapse a shape around @p dim into (outer, extent, inner). */
struct DimView
{
    int64_t outer = 1;
    int64_t extent = 1;
    int64_t inner = 1;
};

DimView
makeDimView(const Shape &shape, int dim)
{
    if (dim < 0)
        dim += shape.rank();
    SCNN_CHECK(dim >= 0 && dim < shape.rank(),
               "dim " << dim << " out of range for " << shape.toString());
    DimView v;
    for (int d = 0; d < dim; ++d)
        v.outer *= shape.dim(d);
    v.extent = shape.dim(dim);
    for (int d = dim + 1; d < shape.rank(); ++d)
        v.inner *= shape.dim(d);
    return v;
}

} // namespace

std::vector<Tensor>
splitDim(const Tensor &t, int dim, const std::vector<int64_t> &starts)
{
    SCNN_REQUIRE(!starts.empty(), "empty split scheme");
    SCNN_REQUIRE(starts[0] == 0, "split scheme must start at 0");
    if (dim < 0)
        dim += t.shape().rank();
    const DimView v = makeDimView(t.shape(), dim);
    for (size_t i = 1; i < starts.size(); ++i)
        SCNN_REQUIRE(starts[i] > starts[i - 1] && starts[i] < v.extent,
                     "split starts must be strictly increasing and "
                     "within the extent "
                         << v.extent);

    std::vector<Tensor> parts;
    parts.reserve(starts.size());
    for (size_t i = 0; i < starts.size(); ++i) {
        const int64_t begin = starts[i];
        const int64_t end =
            (i + 1 < starts.size()) ? starts[i + 1] : v.extent;
        const int64_t len = end - begin;
        Shape part_shape = t.shape();
        part_shape.setDim(dim, len);
        Tensor part(part_shape);
        for (int64_t o = 0; o < v.outer; ++o) {
            const float *src =
                t.data() + (o * v.extent + begin) * v.inner;
            float *dst = part.data() + o * len * v.inner;
            std::memcpy(dst, src,
                        static_cast<size_t>(len * v.inner) *
                            sizeof(float));
        }
        parts.push_back(std::move(part));
    }
    return parts;
}

Tensor
concatDim(const std::vector<Tensor> &parts, int dim)
{
    SCNN_REQUIRE(!parts.empty(), "concat of zero tensors");
    const Shape &first = parts[0].shape();
    if (dim < 0)
        dim += first.rank();
    int64_t total = 0;
    for (const auto &p : parts) {
        SCNN_REQUIRE(p.shape().rank() == first.rank(),
                     "concat rank mismatch");
        for (int d = 0; d < first.rank(); ++d) {
            if (d == dim)
                continue;
            SCNN_REQUIRE(p.shape().dim(d) == first.dim(d),
                         "concat non-dim extent mismatch at dim "
                             << d << ": " << p.shape().toString()
                             << " vs " << first.toString());
        }
        total += p.shape().dim(dim);
    }

    Shape out_shape = first;
    out_shape.setDim(dim, total);
    Tensor out(out_shape);
    const DimView v = makeDimView(out_shape, dim);

    int64_t offset = 0;
    for (const auto &p : parts) {
        const int64_t len = p.shape().dim(dim);
        for (int64_t o = 0; o < v.outer; ++o) {
            const float *src = p.data() + o * len * v.inner;
            float *dst = out.data() + (o * v.extent + offset) * v.inner;
            std::memcpy(dst, src,
                        static_cast<size_t>(len * v.inner) *
                            sizeof(float));
        }
        offset += len;
    }
    return out;
}

Tensor
pad2d(const Tensor &t, int64_t ph_b, int64_t ph_e, int64_t pw_b,
      int64_t pw_e)
{
    SCNN_REQUIRE(t.shape().rank() == 4, "pad2d needs NCHW input");
    const int64_t n = t.shape().dim(0);
    const int64_t c = t.shape().dim(1);
    const int64_t h = t.shape().dim(2);
    const int64_t w = t.shape().dim(3);
    const int64_t oh = h + ph_b + ph_e;
    const int64_t ow = w + pw_b + pw_e;
    SCNN_REQUIRE(oh >= 0 && ow >= 0,
                 "pad2d would produce negative extent");

    Tensor out(Shape{n, c, oh, ow});
    for (int64_t in = 0; in < n; ++in) {
        for (int64_t ic = 0; ic < c; ++ic) {
            for (int64_t y = 0; y < oh; ++y) {
                const int64_t sy = y - ph_b;
                if (sy < 0 || sy >= h)
                    continue;
                // Copy the in-bounds horizontal span of this row.
                const int64_t x_lo = std::max<int64_t>(0, pw_b);
                const int64_t x_hi = std::min<int64_t>(ow, w + pw_b);
                if (x_lo >= x_hi)
                    continue;
                const float *src =
                    t.data() +
                    (((in * c + ic) * h + sy) * w + (x_lo - pw_b));
                float *dst = out.data() +
                             (((in * c + ic) * oh + y) * ow + x_lo);
                std::memcpy(dst, src,
                            static_cast<size_t>(x_hi - x_lo) *
                                sizeof(float));
            }
        }
    }
    return out;
}

void
axpy(float scale, const Tensor &a, Tensor &out)
{
    SCNN_CHECK(a.shape() == out.shape(), "axpy shape mismatch");
    const float *pa = a.data();
    float *po = out.data();
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i)
        po[i] += scale * pa[i];
}

void
addWindow2d(const Tensor &src, int64_t h0, int64_t w0, Tensor &dst)
{
    SCNN_REQUIRE(src.shape().rank() == 4 && dst.shape().rank() == 4,
                 "addWindow2d needs NCHW tensors");
    const int64_t n = src.shape().dim(0);
    const int64_t c = src.shape().dim(1);
    const int64_t h = src.shape().dim(2);
    const int64_t w = src.shape().dim(3);
    const int64_t dh = dst.shape().dim(2);
    const int64_t dw = dst.shape().dim(3);
    SCNN_REQUIRE(dst.shape().dim(0) == n && dst.shape().dim(1) == c,
                 "addWindow2d batch/channel mismatch");
    SCNN_REQUIRE(h0 >= 0 && w0 >= 0 && h0 + h <= dh && w0 + w <= dw,
                 "addWindow2d window [" << h0 << ", " << h0 + h
                                        << ") x [" << w0 << ", "
                                        << w0 + w
                                        << ") escapes destination "
                                        << dst.shape().toString());
    for (int64_t nc = 0; nc < n * c; ++nc) {
        const float *splane = src.data() + nc * h * w;
        float *dplane = dst.data() + nc * dh * dw;
        for (int64_t y = 0; y < h; ++y) {
            const float *srow = splane + y * w;
            float *drow = dplane + (h0 + y) * dw + w0;
            for (int64_t x = 0; x < w; ++x)
                drow[x] += srow[x];
        }
    }
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    SCNN_CHECK(a.shape() == b.shape(), "add shape mismatch");
    Tensor out = a;
    axpy(1.0f, b, out);
    return out;
}

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    SCNN_CHECK(a.shape() == b.shape(),
               "maxAbsDiff shape mismatch: " << a.shape().toString()
                                             << " vs "
                                             << b.shape().toString());
    float m = 0.0f;
    for (int64_t i = 0; i < a.numel(); ++i)
        m = std::max(m, std::fabs(a.at(i) - b.at(i)));
    return m;
}

bool
allClose(const Tensor &a, const Tensor &b, float tol)
{
    if (!(a.shape() == b.shape()))
        return false;
    return maxAbsDiff(a, b) <= tol;
}

} // namespace scnn
