#include "tensor/shape.h"

#include <sstream>

#include "util/logging.h"

namespace scnn {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims)
{
    for (auto d : dims_)
        SCNN_CHECK(d >= 0, "negative dimension in shape " << toString());
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims))
{
    for (auto d : dims_)
        SCNN_CHECK(d >= 0, "negative dimension in shape " << toString());
}

int64_t
Shape::dim(int d) const
{
    if (d < 0)
        d += rank();
    SCNN_CHECK(d >= 0 && d < rank(),
               "dim index " << d << " out of range for " << toString());
    return dims_[d];
}

void
Shape::setDim(int d, int64_t value)
{
    if (d < 0)
        d += rank();
    SCNN_CHECK(d >= 0 && d < rank(), "dim index out of range");
    SCNN_CHECK(value >= 0, "negative dimension");
    dims_[d] = value;
}

int64_t
Shape::numel() const
{
    int64_t n = 1;
    for (auto d : dims_)
        n *= d;
    return n;
}

std::vector<int64_t>
Shape::strides() const
{
    std::vector<int64_t> st(dims_.size(), 1);
    for (int d = rank() - 2; d >= 0; --d)
        st[d] = st[d + 1] * dims_[d + 1];
    return st;
}

std::string
Shape::toString() const
{
    std::ostringstream os;
    os << '[';
    for (size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            os << ", ";
        os << dims_[i];
    }
    os << ']';
    return os.str();
}

} // namespace scnn
