#include "tensor/tensor.h"

#include "util/logging.h"

namespace scnn {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_.numel()), 0.0f)
{
}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_.numel()), value)
{
}

Tensor
Tensor::uninitialized(Shape shape)
{
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_.resize(static_cast<size_t>(t.shape_.numel()));
    return t;
}

float &
Tensor::at(int64_t i)
{
    SCNN_CHECK(i >= 0 && i < numel(), "index " << i << " out of range");
    return data_[static_cast<size_t>(i)];
}

float
Tensor::at(int64_t i) const
{
    SCNN_CHECK(i >= 0 && i < numel(), "index " << i << " out of range");
    return data_[static_cast<size_t>(i)];
}

float &
Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w)
{
    SCNN_CHECK(shape_.rank() == 4, "at4 on rank-" << shape_.rank());
    const auto &d = shape_.dims();
    SCNN_CHECK(n >= 0 && n < d[0] && c >= 0 && c < d[1] && h >= 0 &&
                   h < d[2] && w >= 0 && w < d[3],
               "at4(" << n << "," << c << "," << h << "," << w
                      << ") out of " << shape_.toString());
    return data_[static_cast<size_t>(((n * d[1] + c) * d[2] + h) * d[3] +
                                     w)];
}

float
Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) const
{
    return const_cast<Tensor *>(this)->at4(n, c, h, w);
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Tensor::fillNormal(Rng &rng, float mean, float stddev)
{
    for (auto &v : data_)
        v = rng.normal(mean, stddev);
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    for (auto &v : data_)
        v = rng.uniform(lo, hi);
}

Tensor
Tensor::reshape(Shape new_shape) const &
{
    SCNN_CHECK(new_shape.numel() == numel(),
               "reshape " << shape_.toString() << " -> "
                          << new_shape.toString());
    Tensor out;
    out.shape_ = std::move(new_shape);
    out.data_ = data_;
    return out;
}

Tensor
Tensor::reshape(Shape new_shape) &&
{
    SCNN_CHECK(new_shape.numel() == numel(),
               "reshape " << shape_.toString() << " -> "
                          << new_shape.toString());
    Tensor out;
    out.shape_ = std::move(new_shape);
    out.data_ = std::move(data_);
    return out;
}

} // namespace scnn
