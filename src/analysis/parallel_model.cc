#include "analysis/parallel_model.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "kernels/gemm.h"
#include "kernels/winograd.h"
#include "train/executor.h"

namespace scnn {

int64_t
findParallelRegion(const ParallelPlan &plan, const std::string &name)
{
    for (size_t i = 0; i < plan.regions.size(); ++i)
        if (plan.regions[i].name == name)
            return static_cast<int64_t>(i);
    return -1;
}

std::string
parallelItemName(const ParallelPlan &plan, int64_t item)
{
    if (item >= 0 && item < static_cast<int64_t>(plan.items.size()) &&
        !plan.items[static_cast<size_t>(item)].name.empty())
        return plan.items[static_cast<size_t>(item)].name;
    std::ostringstream os;
    os << "item " << item;
    return os.str();
}

namespace {

/** Expanded-interval explosion guard for corrupt spans. Every span a
 * builder emits expands to at most (items x channels) intervals —
 * orders of magnitude below this. */
constexpr int64_t kMaxSpanExpansion = int64_t{1} << 22;

/** Happens-before checks walk a per-offset array; ordered regions
 * are slot-granular (one slot per tensor), far below this. */
constexpr int64_t kMaxOrderedRegionSize = int64_t{1} << 20;

/** Stop repeating one failure mode past this many findings/region. */
constexpr int kMaxFindingsPerRegion = 16;

/** Min/max float offset touched by a span; false for malformed
 * spans (non-positive counts or lengths). Handles negative strides
 * so corrupt plans get bounds diagnostics instead of UB. */
bool
spanBounds(const StridedSpan &sp, int64_t *lo, int64_t *hi)
{
    if (sp.len <= 0 || sp.n1 <= 0 || sp.n2 <= 0)
        return false;
    const int64_t r1 = (sp.n1 - 1) * sp.s1;
    const int64_t r2 = (sp.n2 - 1) * sp.s2;
    *lo = sp.base + std::min<int64_t>(r1, 0) + std::min<int64_t>(r2, 0);
    *hi = sp.base + std::max<int64_t>(r1, 0) + std::max<int64_t>(r2, 0) +
          sp.len;
    return true;
}

/** One expanded contiguous interval of one item's access. */
struct Interval
{
    int64_t lo = 0;
    int64_t hi = 0; ///< exclusive
    int64_t item = -1;
    int64_t epoch = 0;
    int64_t seq = -1;
};

void
expandSpan(const StridedSpan &sp, int64_t item, int64_t epoch,
           int64_t seq, std::vector<Interval> &out)
{
    // Zero-stride repeats expand to the same interval; dedupe them so
    // a degenerate span cannot blow up the interval list.
    const int64_t n1 = sp.s1 == 0 ? 1 : sp.n1;
    const int64_t n2 = sp.s2 == 0 ? 1 : sp.n2;
    for (int64_t i1 = 0; i1 < n1; ++i1)
        for (int64_t i2 = 0; i2 < n2; ++i2) {
            const int64_t base = sp.base + i1 * sp.s1 + i2 * sp.s2;
            out.push_back({base, base + sp.len, item, epoch, seq});
        }
}

/** Per-region interval sets, split by direction. */
struct RegionAccesses
{
    std::vector<Interval> writes;
    std::vector<Interval> reads;
};

bool
byEpochThenLo(const Interval &a, const Interval &b)
{
    if (a.epoch != b.epoch)
        return a.epoch < b.epoch;
    return a.lo < b.lo;
}

/**
 * SA601: within every epoch, sweep reads and writes together; any
 * overlap between *different* items where at least one side writes
 * is a data race.
 */
void
checkSameEpochRaces(const ParallelPlan &plan, int64_t region,
                    RegionAccesses &ra, DiagnosticSink &sink)
{
    const std::string &rname =
        plan.regions[static_cast<size_t>(region)].name;
    struct Tagged
    {
        Interval iv;
        bool write;
    };
    std::vector<Tagged> all;
    all.reserve(ra.writes.size() + ra.reads.size());
    for (const Interval &iv : ra.writes)
        all.push_back({iv, true});
    for (const Interval &iv : ra.reads)
        all.push_back({iv, false});
    std::sort(all.begin(), all.end(),
              [](const Tagged &a, const Tagged &b) {
                  return byEpochThenLo(a.iv, b.iv);
              });

    int findings = 0;
    std::vector<const Tagged *> active;
    for (size_t i = 0; i < all.size(); ++i) {
        if (i > 0 && all[i].iv.epoch != all[i - 1].iv.epoch)
            active.clear();
        const Tagged &cur = all[i];
        // Expire intervals that end at or before the new start.
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](const Tagged *t) {
                                        return t->iv.hi <= cur.iv.lo;
                                    }),
                     active.end());
        for (const Tagged *t : active) {
            if (t->iv.item == cur.iv.item)
                continue;
            if (!t->write && !cur.write)
                continue;
            if (findings++ >= kMaxFindingsPerRegion)
                return;
            std::ostringstream os;
            os << "region '" << rname << "': "
               << (t->write && cur.write ? "write sets of "
                                         : "write/read sets of ")
               << parallelItemName(plan, t->iv.item) << " and "
               << parallelItemName(plan, cur.iv.item) << " overlap at ["
               << std::max(t->iv.lo, cur.iv.lo) << ", "
               << std::min(t->iv.hi, cur.iv.hi) << ") in epoch "
               << cur.iv.epoch;
            DiagLocation loc;
            loc.step = static_cast<int>(cur.iv.item);
            sink.add("SA601", loc, os.str());
        }
        active.push_back(&all[i]);
    }
}

/**
 * SA605 (ordered regions): every offset a read touches in epoch e
 * must have been written in some epoch strictly before e.
 */
void
checkHappensBefore(const ParallelPlan &plan, int64_t region,
                   const RegionAccesses &ra, DiagnosticSink &sink)
{
    const ParallelRegion &r =
        plan.regions[static_cast<size_t>(region)];
    if (r.size <= 0 || r.size > kMaxOrderedRegionSize)
        return; // bounds problems are reported as SA602
    std::vector<int64_t> first_write(static_cast<size_t>(r.size),
                                     INT64_MAX);
    for (const Interval &w : ra.writes)
        for (int64_t off = std::max<int64_t>(w.lo, 0);
             off < std::min(w.hi, r.size); ++off)
            first_write[static_cast<size_t>(off)] =
                std::min(first_write[static_cast<size_t>(off)],
                         w.epoch);
    int findings = 0;
    for (const Interval &rd : ra.reads)
        for (int64_t off = std::max<int64_t>(rd.lo, 0);
             off < std::min(rd.hi, r.size); ++off) {
            if (first_write[static_cast<size_t>(off)] < rd.epoch)
                continue;
            if (findings++ >= kMaxFindingsPerRegion)
                return;
            std::ostringstream os;
            os << "region '" << r.name << "': "
               << parallelItemName(plan, rd.item) << " reads slot " << off
               << " in epoch " << rd.epoch
               << (first_write[static_cast<size_t>(off)] == INT64_MAX
                       ? " but no item ever writes it"
                       : " before any earlier epoch writes it");
            DiagLocation loc;
            loc.step = static_cast<int>(rd.item);
            sink.add("SA605", loc, os.str());
            break; // one finding per read access
        }
}

/**
 * SA606 (serial_stats regions): overlapping writes must come from
 * distinct epochs (never concurrent) and their epoch order must
 * agree with their serial (seq) order — the deferred BN running-stat
 * contract: updates happen one at a time, in topological order.
 */
void
checkSerialStats(const ParallelPlan &plan, int64_t region,
                 RegionAccesses &ra, DiagnosticSink &sink)
{
    const std::string &rname =
        plan.regions[static_cast<size_t>(region)].name;
    std::sort(ra.writes.begin(), ra.writes.end(),
              [](const Interval &a, const Interval &b) {
                  return a.lo < b.lo;
              });
    int findings = 0;
    std::vector<const Interval *> active;
    for (const Interval &cur : ra.writes) {
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](const Interval *t) {
                                        return t->hi <= cur.lo;
                                    }),
                     active.end());
        for (const Interval *t : active) {
            if (t->item == cur.item && t->epoch == cur.epoch)
                continue;
            const bool concurrent = t->epoch == cur.epoch;
            const bool unordered = t->seq < 0 || cur.seq < 0;
            const bool misordered =
                !unordered && (t->epoch < cur.epoch) != (t->seq < cur.seq);
            if (!concurrent && !unordered && !misordered)
                continue;
            if (findings++ >= kMaxFindingsPerRegion)
                return;
            std::ostringstream os;
            os << "region '" << rname << "': stat updates of "
               << parallelItemName(plan, t->item) << " and "
               << parallelItemName(plan, cur.item) << " overlap at ["
               << std::max(t->lo, cur.lo) << ", "
               << std::min(t->hi, cur.hi) << ") ";
            if (concurrent)
                os << "in the same epoch " << cur.epoch
                   << " (running-stat updates must be serialized)";
            else if (unordered)
                os << "without a serial order (seq unset)";
            else
                os << "with epoch order disagreeing with serial "
                      "order (seq "
                   << t->seq << " vs " << cur.seq << ")";
            DiagLocation loc;
            loc.step = static_cast<int>(cur.item);
            sink.add("SA606", loc, os.str());
        }
        active.push_back(&cur);
    }
}

/**
 * SA609 (ordered_accum regions): the backward halo-accumulation
 * contract. Scatter-adds into a shared gradient region may overlap
 * (halo rows, shared weight-gradient accumulators), but every
 * overlapping pair must come from distinct epochs — one worker's
 * serial program order — and that epoch order must agree with the
 * serial (seq) order, or the accumulation is either a race or
 * nondeterministically grouped.
 */
void
checkOrderedAccum(const ParallelPlan &plan, int64_t region,
                  RegionAccesses &ra, DiagnosticSink &sink)
{
    const std::string &rname =
        plan.regions[static_cast<size_t>(region)].name;
    std::sort(ra.writes.begin(), ra.writes.end(),
              [](const Interval &a, const Interval &b) {
                  return a.lo < b.lo;
              });
    int findings = 0;
    std::vector<const Interval *> active;
    for (const Interval &cur : ra.writes) {
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](const Interval *t) {
                                        return t->hi <= cur.lo;
                                    }),
                     active.end());
        for (const Interval *t : active) {
            if (t->item == cur.item && t->epoch == cur.epoch)
                continue;
            const bool concurrent = t->epoch == cur.epoch;
            const bool unordered = t->seq < 0 || cur.seq < 0;
            const bool misordered =
                !unordered && (t->epoch < cur.epoch) != (t->seq < cur.seq);
            if (!concurrent && !unordered && !misordered)
                continue;
            if (findings++ >= kMaxFindingsPerRegion)
                return;
            std::ostringstream os;
            os << "region '" << rname << "': halo accumulations of "
               << parallelItemName(plan, t->item) << " and "
               << parallelItemName(plan, cur.item) << " overlap at ["
               << std::max(t->lo, cur.lo) << ", "
               << std::min(t->hi, cur.hi) << ") ";
            if (concurrent)
                os << "in the same epoch " << cur.epoch
                   << " (overlapping scatter-adds must be "
                      "serialized)";
            else if (unordered)
                os << "without a serial order (seq unset)";
            else
                os << "with epoch order disagreeing with serial "
                      "order (seq "
                   << t->seq << " vs " << cur.seq << ")";
            DiagLocation loc;
            loc.step = static_cast<int>(cur.item);
            sink.add("SA609", loc, os.str());
        }
        active.push_back(&cur);
    }
}

/** SA608 (exact_cover regions): the write-set union tiles [0, size). */
void
checkCoverage(const ParallelPlan &plan, int64_t region,
              RegionAccesses &ra, DiagnosticSink &sink)
{
    const ParallelRegion &r =
        plan.regions[static_cast<size_t>(region)];
    std::sort(ra.writes.begin(), ra.writes.end(),
              [](const Interval &a, const Interval &b) {
                  return a.lo < b.lo;
              });
    int findings = 0;
    int64_t covered = 0;
    auto gap = [&](int64_t lo, int64_t hi) {
        if (findings++ >= kMaxFindingsPerRegion)
            return;
        std::ostringstream os;
        os << "region '" << r.name << "': no work item writes ["
           << lo << ", " << hi << ") — the decomposition leaves a "
           << (hi - lo) << "-float gap";
        sink.add("SA608", DiagLocation{}, os.str());
    };
    for (const Interval &w : ra.writes) {
        if (w.lo > covered)
            gap(covered, w.lo);
        covered = std::max(covered, w.hi);
    }
    if (covered < r.size)
        gap(covered, r.size);
}

} // namespace

std::vector<Diagnostic>
analyzeParallelPlan(const ParallelPlan &plan)
{
    DiagnosticSink sink;
    const int64_t n_regions =
        static_cast<int64_t>(plan.regions.size());
    std::vector<RegionAccesses> per_region(
        static_cast<size_t>(n_regions));

    for (size_t i = 0; i < plan.items.size(); ++i) {
        const ParallelItem &item = plan.items[i];
        const int64_t item_idx = static_cast<int64_t>(i);
        for (const ParallelAccess &a : item.accesses) {
            DiagLocation loc;
            loc.step = static_cast<int>(item_idx);
            if (a.region < 0 || a.region >= n_regions) {
                std::ostringstream os;
                os << parallelItemName(plan, item_idx)
                   << " references region " << a.region
                   << " of " << n_regions;
                sink.add("SA602", loc, os.str());
                continue;
            }
            const ParallelRegion &r =
                plan.regions[static_cast<size_t>(a.region)];
            int64_t lo = 0;
            int64_t hi = 0;
            if (!spanBounds(a.span, &lo, &hi) ||
                a.span.count() > kMaxSpanExpansion) {
                std::ostringstream os;
                os << parallelItemName(plan, item_idx)
                   << " has a malformed access span in region '"
                   << r.name << "' (counts/length non-positive or "
                   << "expansion too large)";
                sink.add("SA602", loc, os.str());
                continue;
            }
            if (lo < 0 || hi > r.size) {
                std::ostringstream os;
                os << parallelItemName(plan, item_idx) << " accesses ["
                   << lo << ", " << hi << ") outside region '"
                   << r.name << "' of size " << r.size;
                sink.add("SA602", loc, os.str());
                continue;
            }
            if (a.write && r.read_only) {
                std::ostringstream os;
                os << parallelItemName(plan, item_idx)
                   << " writes [" << lo << ", " << hi
                   << ") of read-only region '" << r.name << "'";
                sink.add("SA603", loc, os.str());
                continue;
            }
            if (r.owner >= 0 && r.owner != item_idx) {
                std::ostringstream os;
                os << parallelItemName(plan, item_idx) << " accesses region '"
                   << r.name << "' owned by "
                   << parallelItemName(plan, r.owner);
                sink.add("SA604", loc, os.str());
                continue;
            }
            if (r.read_only)
                continue; // reads of read-only regions always race-free
            auto &ra = per_region[static_cast<size_t>(a.region)];
            expandSpan(a.span, item_idx, item.epoch, item.seq,
                       a.write ? ra.writes : ra.reads);
        }
    }

    for (int64_t rg = 0; rg < n_regions; ++rg) {
        const ParallelRegion &r =
            plan.regions[static_cast<size_t>(rg)];
        if (r.read_only)
            continue;
        auto &ra = per_region[static_cast<size_t>(rg)];
        if (r.serial_stats)
            checkSerialStats(plan, rg, ra, sink);
        else if (r.ordered_accum)
            checkOrderedAccum(plan, rg, ra, sink);
        else
            checkSameEpochRaces(plan, rg, ra, sink);
        if (r.ordered)
            checkHappensBefore(plan, rg, ra, sink);
        if (r.exact_cover)
            checkCoverage(plan, rg, ra, sink);
    }
    return sink.take();
}

// ---------------------------------------------------------------------------
// Builders: one per parallel surface. Each derives its decomposition
// from the helper the kernel itself uses, so the model and the code
// cannot drift apart silently.
// ---------------------------------------------------------------------------

ParallelPlan
buildSplitConvPlan(int64_t n, int64_t c, int64_t ih, int64_t iw,
                   int64_t oc, const Window2d &win,
                   const SplitScheme2d &scheme)
{
    ParallelPlan plan;
    plan.name = "split_conv";
    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;
    const int64_t krows = c * win.kh * win.kw;

    // The panel region covers whichever packed layout the dispatcher
    // picks (im2col A panels or the 16 Winograd U matrices) — the
    // footprints differ only in size, never in sharing discipline.
    const int64_t panel_floats =
        std::max(gemmPackedASize(oc, krows),
                 winogradPackedUSize(oc, c));

    ParallelRegion out_region;
    out_region.name = "output";
    out_region.size = n * oc * out_h * out_w;
    out_region.exact_cover = true;
    plan.regions.push_back(out_region);

    ParallelRegion in_region;
    in_region.name = "input";
    in_region.size = n * c * ih * iw;
    in_region.read_only = true;
    plan.regions.push_back(in_region);

    ParallelRegion w_region;
    w_region.name = "weight_panels";
    w_region.size = panel_floats;
    w_region.read_only = true;
    plan.regions.push_back(w_region);

    const std::vector<SplitBandItem> bands =
        splitConvBandItems(scheme.h);
    int64_t max_band_rows = 0;
    for (const SplitBandItem &b : bands)
        max_band_rows = std::max(max_band_rows, b.oy1 - b.oy0);
    const int64_t max_band_cols = max_band_rows * out_w;
    const int64_t arena_floats =
        krows * max_band_cols + gemmPackedBSize(krows, max_band_cols);

    const int64_t n_bands = static_cast<int64_t>(bands.size());
    for (int64_t i = 0; i < n * n_bands; ++i) {
        const int64_t in = i / n_bands;
        const SplitBandItem &band =
            bands[static_cast<size_t>(i % n_bands)];
        const SplitPiece1d &ph =
            scheme.h.pieces[static_cast<size_t>(band.hi)];

        // Every item owns a private staging region (its worker's
        // scratch-arena scope); nothing else may touch it.
        ParallelRegion arena;
        {
            std::ostringstream os;
            os << "arena:" << i;
            arena.name = os.str();
        }
        arena.size = arena_floats;
        arena.owner = i;
        plan.regions.push_back(arena);
        const int arena_region =
            static_cast<int>(plan.regions.size()) - 1;

        ParallelItem item;
        {
            std::ostringstream os;
            os << "img" << in << ":band" << band.hi << "."
               << band.oy0;
            item.name = os.str();
        }
        item.epoch = 0; // one parallelFor = one barrier group

        // The band writes parent output rows
        // [out_start + oy0, out_start + oy1) of every channel, full
        // width (all width patches of the group), at the parent
        // channel stride.
        ParallelAccess wout;
        wout.region = 0;
        wout.write = true;
        wout.span = {in * oc * out_h * out_w +
                         (ph.out_start + band.oy0) * out_w,
                     oc, out_h * out_w, 1, 0,
                     (band.oy1 - band.oy0) * out_w};
        item.accesses.push_back(wout);

        // Halo reads: each width patch's input rectangle, modeled as
        // the conservative contiguous hull from the rectangle's
        // first float (channel 0) to its last (channel c-1) — the
        // same hull the shadow recorder logs, and provably inside
        // the image.
        for (int wi = 0; wi < scheme.w.parts(); ++wi) {
            const SplitPiece1d &pw =
                scheme.w.pieces[static_cast<size_t>(wi)];
            ParallelAccess rin;
            rin.region = 1;
            const int64_t first =
                ph.in_start * iw + pw.in_start;
            const int64_t last =
                (c - 1) * ih * iw + (ph.in_start + ph.inLen() - 1) * iw +
                pw.in_start + pw.inLen();
            rin.span = StridedSpan::interval(
                in * c * ih * iw + first, last - first);
            item.accesses.push_back(rin);
        }

        // Weight panels are shared read-only by every item.
        ParallelAccess rw_panels;
        rw_panels.region = 2;
        rw_panels.span = StridedSpan::interval(0, panel_floats);
        item.accesses.push_back(rw_panels);

        // Column staging lives in the item's own arena region.
        ParallelAccess warena;
        warena.region = arena_region;
        warena.write = true;
        warena.span = StridedSpan::interval(0, arena_floats);
        item.accesses.push_back(warena);
        ParallelAccess rarena = warena;
        rarena.write = false;
        item.accesses.push_back(rarena);

        plan.items.push_back(std::move(item));
    }
    return plan;
}

ParallelPlan
buildSplitPoolPlan(int64_t n, int64_t c, int64_t ih, int64_t iw,
                   const Window2d &win, const SplitScheme2d &scheme)
{
    (void)win;
    ParallelPlan plan;
    plan.name = "split_pool";
    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;

    ParallelRegion out_region;
    out_region.name = "output";
    out_region.size = n * c * out_h * out_w;
    out_region.exact_cover = true;
    plan.regions.push_back(out_region);

    ParallelRegion in_region;
    in_region.name = "input";
    in_region.size = n * c * ih * iw;
    in_region.read_only = true;
    plan.regions.push_back(in_region);

    const int hp = scheme.h.parts();
    const int wp = scheme.w.parts();
    const int64_t parts = int64_t(hp) * wp;
    for (int64_t i = 0; i < n * parts; ++i) {
        const int64_t in = i / parts;
        const int hi = static_cast<int>((i % parts) / wp);
        const int wi = static_cast<int>(i % wp);
        const SplitPiece1d &ph =
            scheme.h.pieces[static_cast<size_t>(hi)];
        const SplitPiece1d &pw =
            scheme.w.pieces[static_cast<size_t>(wi)];

        ParallelItem item;
        {
            std::ostringstream os;
            os << "img" << in << ":patch" << hi << "." << wi;
            item.name = os.str();
        }
        item.epoch = 0;

        // The patch writes its output block in every channel: rows
        // [out_start_h, out_end_h), columns [out_start_w, out_end_w).
        ParallelAccess wout;
        wout.region = 0;
        wout.write = true;
        wout.span = {in * c * out_h * out_w + ph.out_start * out_w +
                         pw.out_start,
                     c, out_h * out_w, ph.outLen(), out_w,
                     pw.outLen()};
        item.accesses.push_back(wout);

        ParallelAccess rin;
        rin.region = 1;
        const int64_t first = ph.in_start * iw + pw.in_start;
        const int64_t last = (c - 1) * ih * iw +
                             (ph.in_start + ph.inLen() - 1) * iw +
                             pw.in_start + pw.inLen();
        rin.span =
            StridedSpan::interval(in * c * ih * iw + first,
                                  last - first);
        item.accesses.push_back(rin);

        plan.items.push_back(std::move(item));
    }
    return plan;
}

ParallelPlan
buildSplitConvBackwardPlan(int64_t n, int64_t c, int64_t ih,
                           int64_t iw, int64_t oc, const Window2d &win,
                           const SplitScheme2d &scheme)
{
    ParallelPlan plan;
    plan.name = "split_conv_backward";
    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;
    const int64_t krows = c * win.kh * win.kw;
    // The dgrad operand: W^T packed A panels (krows x oc), cached per
    // (layer, split) like the forward panels.
    const int64_t panel_floats = gemmPackedASize(krows, oc);

    ParallelRegion gx_region;
    gx_region.name = "grad_x";
    gx_region.size = n * c * ih * iw;
    gx_region.ordered_accum = true; // halo scatter-adds overlap
    plan.regions.push_back(gx_region);

    ParallelRegion go_region;
    go_region.name = "grad_out";
    go_region.size = n * oc * out_h * out_w;
    go_region.read_only = true;
    plan.regions.push_back(go_region);

    ParallelRegion in_region;
    in_region.name = "input";
    in_region.size = n * c * ih * iw;
    in_region.read_only = true;
    plan.regions.push_back(in_region);

    ParallelRegion w_region;
    w_region.name = "weight_panels";
    w_region.size = panel_floats;
    w_region.read_only = true;
    plan.regions.push_back(w_region);

    ParallelRegion gw_region;
    gw_region.name = "grad_w";
    gw_region.size = oc * krows;
    gw_region.ordered_accum = true; // reductions chain in image order
    plan.regions.push_back(gw_region);

    ParallelRegion gb_region;
    gb_region.name = "grad_b";
    gb_region.size = oc;
    gb_region.ordered_accum = true;
    plan.regions.push_back(gb_region);

    // Per-image partial accumulator: the wgrad panel product chains
    // across the image's bands (beta = 1), and the bias row sums land
    // in the tail — both under the worker's serial band order.
    const int64_t acc_floats = krows * oc + oc;
    for (int64_t in = 0; in < n; ++in) {
        ParallelRegion acc;
        {
            std::ostringstream os;
            os << "wgrad_acc:img" << in;
            acc.name = os.str();
        }
        acc.size = acc_floats;
        acc.ordered_accum = true;
        plan.regions.push_back(acc);
    }
    const int64_t acc_region0 = 6;

    const std::vector<SplitBandItem> bands =
        splitConvBandItems(scheme.h);
    const int64_t n_bands = static_cast<int64_t>(bands.size());
    int64_t max_band_rows = 0;
    for (const SplitBandItem &b : bands)
        max_band_rows = std::max(max_band_rows, b.oy1 - b.oy0);
    const int64_t max_band_cols = max_band_rows * out_w;
    // Staged columns + gradient columns + the three per-band packs.
    const int64_t arena_floats =
        2 * krows * max_band_cols +
        gemmPackedASize(krows, max_band_cols) +
        gemmPackedBSize(max_band_cols, oc) +
        gemmPackedBSize(oc, max_band_cols);

    // Band items. A worker owns a whole image and runs its bands
    // serially ascending; epoch encodes that per-image program order
    // (overlapping grad_x / wgrad_acc writes are intra-image only, so
    // cross-image same-epoch pairs never constrain).
    for (int64_t i = 0; i < n * n_bands; ++i) {
        const int64_t in = i / n_bands;
        const int64_t bi = i % n_bands;
        const SplitBandItem &band = bands[static_cast<size_t>(bi)];
        const SplitPiece1d &ph =
            scheme.h.pieces[static_cast<size_t>(band.hi)];

        ParallelRegion arena;
        {
            std::ostringstream os;
            os << "arena:" << i;
            arena.name = os.str();
        }
        arena.size = arena_floats;
        arena.owner = i;
        plan.regions.push_back(arena);
        const int arena_region =
            static_cast<int>(plan.regions.size()) - 1;

        ParallelItem item;
        {
            std::ostringstream os;
            os << "img" << in << ":band" << band.hi << "."
               << band.oy0;
            item.name = os.str();
        }
        item.epoch = bi;
        item.seq = i;

        for (int wi = 0; wi < scheme.w.parts(); ++wi) {
            const SplitPiece1d &pw =
                scheme.w.pieces[static_cast<size_t>(wi)];
            const Window2d local =
                patchWindow(win, scheme, band.hi, wi);

            // dgrad scatter: the band-restricted write hull
            // col2imViewStrided claims — patch rows [iy_lo, iy_hi)
            // reachable from output rows [oy0, oy1), channel 0's
            // first float through channel c-1's last.
            const int64_t iy_lo = std::max<int64_t>(
                0, band.oy0 * local.sh - local.ph_b);
            const int64_t iy_hi = std::min<int64_t>(
                ph.inLen(),
                (band.oy1 - 1) * local.sh - local.ph_b + local.kh);
            if (iy_lo < iy_hi) {
                ParallelAccess wgx;
                wgx.region = 0;
                wgx.write = true;
                wgx.span = StridedSpan::interval(
                    in * c * ih * iw +
                        (ph.in_start + iy_lo) * iw + pw.in_start,
                    (c - 1) * ih * iw + (iy_hi - 1 - iy_lo) * iw +
                        pw.inLen());
                item.accesses.push_back(wgx);
            }

            // wgrad staging reads the same input hull the forward
            // band reads.
            ParallelAccess rin;
            rin.region = 2;
            const int64_t first = ph.in_start * iw + pw.in_start;
            const int64_t last = (c - 1) * ih * iw +
                                 (ph.in_start + ph.inLen() - 1) * iw +
                                 pw.in_start + pw.inLen();
            rin.span = StridedSpan::interval(
                in * c * ih * iw + first, last - first);
            item.accesses.push_back(rin);
        }

        // Both gradient GEMMs read the band's grad_out rows of every
        // output channel at the parent channel stride.
        ParallelAccess rgo;
        rgo.region = 1;
        rgo.span = {in * oc * out_h * out_w +
                        (ph.out_start + band.oy0) * out_w,
                    oc, out_h * out_w, 1, 0,
                    (band.oy1 - band.oy0) * out_w};
        item.accesses.push_back(rgo);

        ParallelAccess rw_panels;
        rw_panels.region = 3;
        rw_panels.span = StridedSpan::interval(0, panel_floats);
        item.accesses.push_back(rw_panels);

        // The band chains the image's wgrad partial (beta = 1).
        ParallelAccess wacc;
        wacc.region = static_cast<int>(acc_region0 + in);
        wacc.write = true;
        wacc.span = StridedSpan::interval(0, krows * oc);
        item.accesses.push_back(wacc);
        ParallelAccess racc = wacc;
        racc.write = false;
        item.accesses.push_back(racc);

        ParallelAccess warena;
        warena.region = arena_region;
        warena.write = true;
        warena.span = StridedSpan::interval(0, arena_floats);
        item.accesses.push_back(warena);
        ParallelAccess rarena = warena;
        rarena.write = false;
        item.accesses.push_back(rarena);

        plan.items.push_back(std::move(item));
    }

    // Per-image bias item: row sums over the whole grad_out image
    // into the partial accumulator's tail, after the image's bands.
    for (int64_t in = 0; in < n; ++in) {
        ParallelItem item;
        {
            std::ostringstream os;
            os << "img" << in << ":bias";
            item.name = os.str();
        }
        item.epoch = n_bands;
        item.seq = n * n_bands + in;

        ParallelAccess rgo;
        rgo.region = 1;
        rgo.span = StridedSpan::interval(
            in * oc * out_h * out_w, oc * out_h * out_w);
        item.accesses.push_back(rgo);

        ParallelAccess wacc;
        wacc.region = static_cast<int>(acc_region0 + in);
        wacc.write = true;
        wacc.span = StridedSpan::interval(krows * oc, oc);
        item.accesses.push_back(wacc);

        plan.items.push_back(std::move(item));
    }

    // Per-image reduction: serial on the caller in image order after
    // each wave — folds the partial into the shared grad_w / grad_b.
    for (int64_t in = 0; in < n; ++in) {
        ParallelItem item;
        {
            std::ostringstream os;
            os << "img" << in << ":reduce";
            item.name = os.str();
        }
        item.epoch = n_bands + 1 + in;
        item.seq = n * n_bands + n + in;

        ParallelAccess racc;
        racc.region = static_cast<int>(acc_region0 + in);
        racc.span = StridedSpan::interval(0, acc_floats);
        item.accesses.push_back(racc);

        ParallelAccess wgw;
        wgw.region = 4;
        wgw.write = true;
        wgw.span = StridedSpan::interval(0, oc * krows);
        item.accesses.push_back(wgw);
        ParallelAccess rgw = wgw;
        rgw.write = false;
        item.accesses.push_back(rgw);

        ParallelAccess wgb;
        wgb.region = 5;
        wgb.write = true;
        wgb.span = StridedSpan::interval(0, oc);
        item.accesses.push_back(wgb);
        ParallelAccess rgb = wgb;
        rgb.write = false;
        item.accesses.push_back(rgb);

        plan.items.push_back(std::move(item));
    }
    return plan;
}

ParallelPlan
buildSplitPoolBackwardPlan(int64_t n, int64_t c, int64_t ih,
                           int64_t iw, const Window2d &win,
                           const SplitScheme2d &scheme)
{
    (void)win;
    ParallelPlan plan;
    plan.name = "split_pool_backward";
    const int64_t out_h = scheme.h.pieces.back().out_end;
    const int64_t out_w = scheme.w.pieces.back().out_end;

    ParallelRegion gx_region;
    gx_region.name = "grad_x";
    gx_region.size = n * c * ih * iw;
    gx_region.ordered_accum = true; // halo scatter-adds overlap
    plan.regions.push_back(gx_region);

    ParallelRegion go_region;
    go_region.name = "grad_out";
    go_region.size = n * c * out_h * out_w;
    go_region.read_only = true;
    plan.regions.push_back(go_region);

    const int hp = scheme.h.parts();
    const int wp = scheme.w.parts();
    const int64_t parts = int64_t(hp) * wp;
    for (int64_t i = 0; i < n * parts; ++i) {
        const int64_t in = i / parts;
        const int hi = static_cast<int>((i % parts) / wp);
        const int wi = static_cast<int>(i % wp);
        const SplitPiece1d &ph =
            scheme.h.pieces[static_cast<size_t>(hi)];
        const SplitPiece1d &pw =
            scheme.w.pieces[static_cast<size_t>(wi)];

        ParallelItem item;
        {
            std::ostringstream os;
            os << "img" << in << ":patch" << hi << "." << wi;
            item.name = os.str();
        }
        // A worker owns the image; its patches run serially
        // ascending, which epoch/seq encode for the overlap check.
        item.epoch = i % parts;
        item.seq = i;

        // Every tap (max: the forward argmax; avg: the clipped
        // window) of an output in the patch's block lies inside the
        // patch's input rectangle — the scheme's in-range covers its
        // outputs' windows by construction (Eqs. 1-2). Modeled as the
        // conservative contiguous hull, like the forward reads.
        ParallelAccess wgx;
        wgx.region = 0;
        wgx.write = true;
        const int64_t first = ph.in_start * iw + pw.in_start;
        const int64_t last = (c - 1) * ih * iw +
                             (ph.in_start + ph.inLen() - 1) * iw +
                             pw.in_start + pw.inLen();
        wgx.span = StridedSpan::interval(in * c * ih * iw + first,
                                         last - first);
        item.accesses.push_back(wgx);

        ParallelAccess rgo;
        rgo.region = 1;
        rgo.span = {in * c * out_h * out_w + ph.out_start * out_w +
                        pw.out_start,
                    c, out_h * out_w, ph.outLen(), out_w,
                    pw.outLen()};
        item.accesses.push_back(rgo);

        plan.items.push_back(std::move(item));
    }
    return plan;
}

ParallelPlan
buildExecutorWavePlan(const Graph &graph, bool training)
{
    ParallelPlan plan;
    plan.name = "executor_waves";

    // Slot-granular model: one float per tensor / parameter. The
    // executor's unit of sharing is the whole tensor (cache slots are
    // disjoint allocations), so slot granularity is exact.
    ParallelRegion slots;
    slots.name = "slots";
    slots.size = static_cast<int64_t>(graph.tensors().size());
    slots.ordered = true;
    slots.exact_cover = true;
    plan.regions.push_back(slots);

    ParallelRegion params;
    params.name = "params";
    params.size = static_cast<int64_t>(graph.params().size());
    params.serial_stats = true;
    plan.regions.push_back(params);

    const auto waves = computeExecutionWaves(graph);
    for (size_t w = 0; w < waves.size(); ++w) {
        for (NodeId id : waves[w]) {
            const Node &n = graph.node(id);
            ParallelItem item;
            item.name = n.name.empty()
                            ? "node " + std::to_string(id)
                            : n.name;
            item.epoch = static_cast<int64_t>(w);

            ParallelAccess wout;
            wout.region = 0;
            wout.write = true;
            wout.span = StridedSpan::interval(n.output, 1);
            item.accesses.push_back(wout);
            for (TensorId t : n.inputs) {
                ParallelAccess rin;
                rin.region = 0;
                rin.span = StridedSpan::interval(t, 1);
                item.accesses.push_back(rin);
            }
            // Parameter reads. Training-mode BN computes batch stats
            // and never touches the running stats (params[2..3]) in
            // its wave — those are written by the deferred updates
            // below. Inference-mode BN reads them like any other
            // parameter.
            const size_t n_params =
                training && n.kind == OpKind::BatchNorm
                    ? std::min<size_t>(n.params.size(), 2)
                    : n.params.size();
            for (size_t p = 0; p < n_params; ++p) {
                ParallelAccess rp;
                rp.region = 1;
                rp.span = StridedSpan::interval(n.params[p], 1);
                item.accesses.push_back(rp);
            }
            plan.items.push_back(std::move(item));
        }
    }

    if (training) {
        // Deferred BN running-stat updates: the executor applies them
        // one at a time in topological order after every wave has
        // completed. Each update is its own epoch (serialized) with
        // seq = its topological position; patch clones sharing one
        // running-stat parameter therefore write it in a fixed
        // serial order — the bitwise-determinism contract SA606
        // enforces. The narrow-wave serial fallback leaves this
        // phase untouched.
        int64_t serial_epoch = static_cast<int64_t>(waves.size());
        int64_t seq = 0;
        for (NodeId id : graph.topoOrder()) {
            const Node &n = graph.node(id);
            if (n.kind != OpKind::BatchNorm || n.params.size() < 4)
                continue;
            ParallelItem item;
            item.name = (n.name.empty()
                             ? "node " + std::to_string(id)
                             : n.name) +
                        ":bn_update";
            item.epoch = serial_epoch++;
            item.seq = seq++;
            for (size_t p = 2; p < 4; ++p) {
                ParallelAccess wp;
                wp.region = 1;
                wp.write = true;
                wp.span = StridedSpan::interval(n.params[p], 1);
                item.accesses.push_back(wp);
                ParallelAccess rp = wp;
                rp.write = false;
                item.accesses.push_back(rp);
            }
            plan.items.push_back(std::move(item));
        }
    }
    return plan;
}

std::vector<Diagnostic>
analyzeParallelExecution(const Graph &graph, int splits_h,
                         int splits_w)
{
    std::vector<Diagnostic> diags;
    auto append = [&](std::vector<Diagnostic> part, NodeId node) {
        for (Diagnostic &d : part) {
            if (d.loc.node < 0)
                d.loc.node = node;
            diags.push_back(std::move(d));
        }
    };

    append(analyzeParallelPlan(buildExecutorWavePlan(graph, true)),
           -1);

    for (const Node &n : graph.nodes()) {
        if (n.kind != OpKind::Conv2d && n.kind != OpKind::MaxPool2d &&
            n.kind != OpKind::AvgPool2d)
            continue;
        if (n.inputs.empty())
            continue;
        const Shape &ishape = graph.tensor(n.inputs[0]).shape;
        const Shape &oshape = graph.tensor(n.output).shape;
        if (ishape.rank() != 4 || oshape.rank() != 4)
            continue;
        const int64_t batch = ishape.dim(0);
        const int64_t c = ishape.dim(1);
        const int64_t ih = ishape.dim(2);
        const int64_t iw = ishape.dim(3);
        const int64_t oh = oshape.dim(2);
        const int64_t ow = oshape.dim(3);
        if (oh <= 0 || ow <= 0)
            continue;
        const int hp = static_cast<int>(
            std::clamp<int64_t>(splits_h, 1, oh));
        const int wp = static_cast<int>(
            std::clamp<int64_t>(splits_w, 1, ow));

        // allow_downsample: ResNet's 1x1/stride-2 shortcut convs have
        // k < s, which the paper's Eqs. 1-2 exclude but the split
        // machinery supports (the interval collapses to lb).
        const WindowParams1d hop{n.win.kh, n.win.sh, n.win.ph_b,
                                 n.win.ph_e};
        const WindowParams1d wop{n.win.kw, n.win.sw, n.win.pw_b,
                                 n.win.pw_e};
        SplitScheme2d scheme;
        scheme.h = splitWindowOp(hop, ih, evenOutputSplit(oh, hp),
                                 InputSplitPolicy::Center,
                                 /*allow_downsample=*/true);
        scheme.w = splitWindowOp(wop, iw, evenOutputSplit(ow, wp),
                                 InputSplitPolicy::Center,
                                 /*allow_downsample=*/true);

        // Two images suffice: image footprints are identical
        // translates at stride channels*H*W, so disjointness between
        // images 0 and 1 proves it for every pair.
        const int64_t n_model = std::min<int64_t>(batch, 2);
        ParallelPlan plan =
            n.kind == OpKind::Conv2d
                ? buildSplitConvPlan(n_model, c, ih, iw,
                                     oshape.dim(1), n.win, scheme)
                : buildSplitPoolPlan(n_model, c, ih, iw, n.win,
                                     scheme);
        {
            std::ostringstream os;
            os << plan.name << ":" << n.name << "[" << hp << "x"
               << wp << "]";
            plan.name = os.str();
        }
        append(analyzeParallelPlan(plan), n.id);

        // The backward decomposition is a distinct proof obligation:
        // halo scatter-adds into grad_x overlap between neighbouring
        // patches, legal only under the ordered-accumulation
        // discipline (SA609).
        ParallelPlan bplan =
            n.kind == OpKind::Conv2d
                ? buildSplitConvBackwardPlan(n_model, c, ih, iw,
                                             oshape.dim(1), n.win,
                                             scheme)
                : buildSplitPoolBackwardPlan(n_model, c, ih, iw,
                                             n.win, scheme);
        {
            std::ostringstream os;
            os << bplan.name << ":" << n.name << "[" << hp << "x"
               << wp << "]";
            bplan.name = os.str();
        }
        append(analyzeParallelPlan(bplan), n.id);
    }
    return diags;
}

bool
lintParallelEnabled()
{
    // Same contract as lintPlansEnabled(): re-read each call so tests
    // can toggle with setenv.
    const char *env = std::getenv("SCNN_LINT_PARALLEL");
    if (env != nullptr)
        return *env != '0';
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

} // namespace scnn
