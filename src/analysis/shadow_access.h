/**
 * @file
 * Shadow-access validator (SA607): the empirical check that keeps
 * the SA6xx static analyzer honest. With SCNN_SHADOW_ACCESS=1, the
 * fused split kernels log coarse-grained (work item, offset range,
 * R/W) claims while they run; a post-run containment check asserts
 * every recorded access lies inside the footprint the ParallelPlan
 * predicted for that item. A violation is an *analyzer* bug (the
 * model diverged from the kernels), surfaced as diagnostic SA607 —
 * distinct from the SA601-SA606 codes, which indict the plan.
 *
 * Protocol:
 *   1. A dispatcher builds the ParallelPlan for the execution it is
 *      about to run and opens a ShadowSession with it.
 *   2. It binds each plan region's name to the region's runtime base
 *      pointer (output tensor, input tensor, packed panels).
 *      Scratch-arena regions stay unbound: arena buffers are
 *      recycled across items by each worker thread, so pointer
 *      identity cannot attribute them to items — their legality is
 *      proved statically (SA604) instead.
 *   3. Work loops call shadowSetItem(i) before running item i;
 *      instrumented kernels call shadowRecord/shadowRecordSpan with
 *      raw pointers. Recording is a no-op (one relaxed atomic load)
 *      when no session is active.
 *   4. The dispatcher calls check(): every record is resolved to
 *      (region, offset) through the bindings and must be contained
 *      in the union of its item's predicted spans — writes within
 *      the item's write set, reads within its read+write set. A
 *      pointer no binding covers, a record with no current item, or
 *      an escaping range each yields an SA607.
 *
 * Recording is coarse (one claim per band/patch/channel, not per
 * element) so the debug overhead stays proportional to the number of
 * work items, not the number of floats.
 */
#ifndef SCNN_ANALYSIS_SHADOW_ACCESS_H
#define SCNN_ANALYSIS_SHADOW_ACCESS_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/parallel_model.h"

namespace scnn {

/**
 * Whether shadow recording is requested: SCNN_SHADOW_ACCESS=1 (any
 * value but "0") enables it in every build type; tests can override
 * with setShadowAccessForTesting. Re-read each call so setenv works.
 */
bool shadowAccessEnabled();

/** Test override: 1 = force on, 0 = force off, -1 = follow the env. */
void setShadowAccessForTesting(int mode);

/** Cumulative process-wide counters (observability for tests/CI). */
struct ShadowAccessStats
{
    int64_t sessions_checked = 0;
    int64_t records_checked = 0;
    int64_t violations = 0;
};

ShadowAccessStats shadowAccessStats();
void shadowAccessResetStats();

/**
 * One recording scope. At most one session is active per process
 * (the fused dispatchers never nest); constructing a second while
 * one is active is a bug and panics.
 */
class ShadowSession
{
  public:
    explicit ShadowSession(ParallelPlan plan);
    ~ShadowSession();

    ShadowSession(const ShadowSession &) = delete;
    ShadowSession &operator=(const ShadowSession &) = delete;

    /** Bind region @p name to its runtime base pointer. Regions left
     * unbound (scratch arenas) never match a recorded pointer. */
    void bind(const std::string &name, const void *base);

    /** Containment check over everything recorded so far; SA607
     * diagnostics for every escape (capped per session). */
    std::vector<Diagnostic> check();

    /** Number of raw records captured so far. */
    int64_t recordCount() const;

    /** Opaque state; public so the free recorder functions can name
     * the active session's type. */
    struct Impl;

  private:
    Impl *impl_;
};

/** Declare the work item the calling thread is about to execute. */
void shadowSetItem(int64_t item);

/** Record a contiguous float range at @p ptr. No-op without an
 * active session. */
void shadowRecord(const void *ptr, int64_t len_floats, bool write);

/** Record a strided claim: @p span offsets are relative to @p ptr
 * (span.base is honored). */
void shadowRecordSpan(const void *ptr, const StridedSpan &span,
                      bool write);

} // namespace scnn

#endif // SCNN_ANALYSIS_SHADOW_ACCESS_H
