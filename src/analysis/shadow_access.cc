#include "analysis/shadow_access.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <tuple>

#include "util/logging.h"

namespace scnn {

namespace {

/** Findings cap per session: one divergence tends to repeat once per
 * item; the first few identify the analyzer bug. */
constexpr int kMaxShadowFindings = 32;

/** Expansion cap for recorded strided claims (matches the static
 * analyzer's guard). */
constexpr int64_t kMaxRecordExpansion = int64_t{1} << 22;

struct Record
{
    const char *ptr = nullptr; ///< byte pointer of span.base == 0
    StridedSpan span;
    bool write = false;
    int64_t item = -1;
};

struct Binding
{
    int64_t region = -1;
    const char *base = nullptr;
    int64_t size = 0; ///< floats
};

std::atomic<int> g_force{-1};
std::atomic<int64_t> g_sessions_checked{0};
std::atomic<int64_t> g_records_checked{0};
std::atomic<int64_t> g_violations{0};

thread_local int64_t tl_item = -1;

} // namespace

struct ShadowSession::Impl
{
    std::mutex mu;
    ParallelPlan plan;
    std::vector<Binding> bindings;
    std::vector<Record> records;
};

namespace {

/** The active session, or null. Writers hold g_session_mu; readers
 * on the record fast path load the atomic and re-validate under the
 * session's own mutex. */
std::atomic<ShadowSession::Impl *> g_active{nullptr};
std::mutex g_session_mu;

void
append(ShadowSession::Impl *impl, const void *ptr,
       const StridedSpan &span, bool write)
{
    std::lock_guard<std::mutex> lock(impl->mu);
    // Re-validate: the session could have been torn down between the
    // atomic load and the lock.
    if (g_active.load(std::memory_order_acquire) != impl)
        return;
    Record r;
    r.ptr = static_cast<const char *>(ptr);
    r.span = span;
    r.write = write;
    r.item = tl_item;
    impl->records.push_back(r);
}

} // namespace

bool
shadowAccessEnabled()
{
    const int force = g_force.load(std::memory_order_relaxed);
    if (force >= 0)
        return force != 0;
    const char *env = std::getenv("SCNN_SHADOW_ACCESS");
    return env != nullptr && *env != '0';
}

void
setShadowAccessForTesting(int mode)
{
    g_force.store(mode, std::memory_order_relaxed);
}

ShadowAccessStats
shadowAccessStats()
{
    return {g_sessions_checked.load(), g_records_checked.load(),
            g_violations.load()};
}

void
shadowAccessResetStats()
{
    g_sessions_checked.store(0);
    g_records_checked.store(0);
    g_violations.store(0);
}

ShadowSession::ShadowSession(ParallelPlan plan) : impl_(new Impl)
{
    impl_->plan = std::move(plan);
    std::lock_guard<std::mutex> lock(g_session_mu);
    SCNN_CHECK(g_active.load() == nullptr,
               "nested shadow-access sessions are not supported");
    g_active.store(impl_, std::memory_order_release);
}

ShadowSession::~ShadowSession()
{
    {
        std::lock_guard<std::mutex> lock(g_session_mu);
        g_active.store(nullptr, std::memory_order_release);
    }
    // Recorders re-validate under impl_->mu, so once the pointer is
    // cleared and the mutex cycles, no thread still touches impl_.
    { std::lock_guard<std::mutex> lock(impl_->mu); }
    delete impl_;
}

void
ShadowSession::bind(const std::string &name, const void *base)
{
    const int64_t region = findParallelRegion(impl_->plan, name);
    SCNN_CHECK(region >= 0,
               "shadow bind: no region named '" << name << "'");
    std::lock_guard<std::mutex> lock(impl_->mu);
    Binding b;
    b.region = region;
    b.base = static_cast<const char *>(base);
    b.size = impl_->plan.regions[static_cast<size_t>(region)].size;
    impl_->bindings.push_back(b);
}

int64_t
ShadowSession::recordCount() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return static_cast<int64_t>(impl_->records.size());
}

std::vector<Diagnostic>
ShadowSession::check()
{
    std::vector<Record> records;
    std::vector<Binding> bindings;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        records = impl_->records;
        bindings = impl_->bindings;
    }
    const ParallelPlan &plan = impl_->plan;
    DiagnosticSink sink;
    int findings = 0;
    auto report = [&](int64_t item, const std::string &msg) {
        g_violations.fetch_add(1, std::memory_order_relaxed);
        if (findings++ >= kMaxShadowFindings)
            return;
        DiagLocation loc;
        loc.step = static_cast<int>(item);
        sink.add("SA607", loc, msg);
    };

    // Predicted footprints, merged lazily per (item, region, dir).
    std::map<std::tuple<int64_t, int64_t, bool>,
             std::vector<std::pair<int64_t, int64_t>>>
        merged;
    auto footprint = [&](int64_t item, int64_t region, bool write)
        -> const std::vector<std::pair<int64_t, int64_t>> & {
        auto key = std::make_tuple(item, region, write);
        auto it = merged.find(key);
        if (it != merged.end())
            return it->second;
        std::vector<std::pair<int64_t, int64_t>> ivs;
        const ParallelItem &pi =
            plan.items[static_cast<size_t>(item)];
        for (const ParallelAccess &a : pi.accesses) {
            if (a.region != region)
                continue;
            // Reads are legal anywhere the item reads *or* writes.
            if (write && !a.write)
                continue;
            const int64_t n1 = a.span.s1 == 0 ? 1 : a.span.n1;
            const int64_t n2 = a.span.s2 == 0 ? 1 : a.span.n2;
            for (int64_t i1 = 0; i1 < n1; ++i1)
                for (int64_t i2 = 0; i2 < n2; ++i2) {
                    const int64_t lo =
                        a.span.base + i1 * a.span.s1 + i2 * a.span.s2;
                    ivs.emplace_back(lo, lo + a.span.len);
                }
        }
        std::sort(ivs.begin(), ivs.end());
        std::vector<std::pair<int64_t, int64_t>> out;
        for (const auto &iv : ivs) {
            if (!out.empty() && iv.first <= out.back().second)
                out.back().second =
                    std::max(out.back().second, iv.second);
            else
                out.push_back(iv);
        }
        return merged.emplace(key, std::move(out)).first->second;
    };

    // [lo, hi) fully covered by the merged interval list?
    auto contained =
        [](const std::vector<std::pair<int64_t, int64_t>> &ivs,
           int64_t lo, int64_t hi) {
            int64_t pos = lo;
            auto it = std::upper_bound(
                ivs.begin(), ivs.end(), pos,
                [](int64_t p, const std::pair<int64_t, int64_t> &iv) {
                    return p < iv.second;
                });
            while (pos < hi) {
                if (it == ivs.end() || it->first > pos)
                    return false;
                pos = it->second;
                ++it;
            }
            return true;
        };

    for (const Record &rec : records) {
        g_records_checked.fetch_add(1, std::memory_order_relaxed);
        const char *dir = rec.write ? "write" : "read";
        // Resolve the pointer through the bindings.
        const Binding *hit = nullptr;
        for (const Binding &b : bindings)
            if (rec.ptr >= b.base &&
                rec.ptr < b.base + b.size * int64_t(sizeof(float))) {
                hit = &b;
                break;
            }
        if (hit == nullptr) {
            std::ostringstream os;
            os << "recorded " << dir
               << " targets memory outside every bound region";
            report(rec.item, os.str());
            continue;
        }
        const std::string &rname =
            plan.regions[static_cast<size_t>(hit->region)].name;
        const int64_t byte_off = rec.ptr - hit->base;
        if (byte_off % int64_t(sizeof(float)) != 0) {
            std::ostringstream os;
            os << "recorded " << dir << " in region '" << rname
               << "' is not float-aligned";
            report(rec.item, os.str());
            continue;
        }
        if (rec.item < 0 ||
            rec.item >= static_cast<int64_t>(plan.items.size())) {
            std::ostringstream os;
            os << "recorded " << dir << " in region '" << rname
               << "' has no valid work item (" << rec.item << ")";
            report(rec.item, os.str());
            continue;
        }
        if (rec.span.len <= 0 || rec.span.n1 <= 0 ||
            rec.span.n2 <= 0 ||
            rec.span.count() > kMaxRecordExpansion) {
            std::ostringstream os;
            os << "recorded " << dir << " in region '" << rname
               << "' has a malformed span";
            report(rec.item, os.str());
            continue;
        }
        const auto &ivs = footprint(rec.item, hit->region, rec.write);
        const int64_t base =
            byte_off / int64_t(sizeof(float)) + rec.span.base;
        const int64_t n1 = rec.span.s1 == 0 ? 1 : rec.span.n1;
        const int64_t n2 = rec.span.s2 == 0 ? 1 : rec.span.n2;
        bool escaped = false;
        int64_t bad_lo = 0;
        for (int64_t i1 = 0; i1 < n1 && !escaped; ++i1)
            for (int64_t i2 = 0; i2 < n2 && !escaped; ++i2) {
                const int64_t lo =
                    base + i1 * rec.span.s1 + i2 * rec.span.s2;
                if (!contained(ivs, lo, lo + rec.span.len)) {
                    escaped = true;
                    bad_lo = lo;
                }
            }
        if (escaped) {
            std::ostringstream os;
            os << parallelItemName(plan, rec.item) << " " << dir << "s ["
               << bad_lo << ", " << bad_lo + rec.span.len
               << ") of region '" << rname
               << "' outside its statically predicted "
               << (rec.write ? "write" : "read") << " set";
            report(rec.item, os.str());
        }
    }
    g_sessions_checked.fetch_add(1, std::memory_order_relaxed);
    return sink.take();
}

void
shadowSetItem(int64_t item)
{
    tl_item = item;
}

void
shadowRecord(const void *ptr, int64_t len_floats, bool write)
{
    ShadowSession::Impl *impl =
        g_active.load(std::memory_order_acquire);
    if (impl == nullptr)
        return;
    append(impl, ptr, StridedSpan::interval(0, len_floats), write);
}

void
shadowRecordSpan(const void *ptr, const StridedSpan &span, bool write)
{
    ShadowSession::Impl *impl =
        g_active.load(std::memory_order_acquire);
    if (impl == nullptr)
        return;
    append(impl, ptr, span, write);
}

} // namespace scnn
