#include "analysis/analyzer.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

namespace scnn {
namespace {

DiagLocation
atNode(NodeId node)
{
    DiagLocation loc;
    loc.node = node;
    return loc;
}

DiagLocation
atTensor(TensorId tensor)
{
    DiagLocation loc;
    loc.tensor = tensor;
    return loc;
}

DiagLocation
atTso(int32_t tso, int step = -1)
{
    DiagLocation loc;
    loc.tso = tso;
    loc.step = step;
    return loc;
}

bool
validTensorId(const Graph &graph, TensorId t)
{
    return t >= 0 && t < static_cast<TensorId>(graph.tensors().size());
}

bool
validNodeId(const Graph &graph, NodeId n)
{
    return n >= 0 && n < static_cast<NodeId>(graph.nodes().size());
}

bool
validTsoId(const StorageAssignment &assignment, TsoId tso)
{
    return tso >= 0 &&
           tso < static_cast<TsoId>(assignment.tsos.size());
}

int64_t
tensorBytes(const Graph &graph, TensorId t)
{
    return graph.tensor(t).shape.numel() * int64_t(sizeof(float));
}

/** Window geometry sane enough to evaluate outH/outW on. */
bool
windowUsable(const Window2d &win)
{
    return win.kh >= 1 && win.kw >= 1 && win.sh >= 1 && win.sw >= 1;
}

// ---------------------------------------------------------------------------
// Suite 1: graph well-formedness (SA1xx + SA504)
// ---------------------------------------------------------------------------

void
checkNodeShapes(const Graph &graph, const Node &n, DiagnosticSink &sink)
{
    auto shape_of = [&](TensorId t) -> const Shape & {
        return graph.tensor(t).shape;
    };
    const Shape &out = shape_of(n.output);

    auto expect = [&](const Shape &want) {
        if (out != want)
            sink.add("SA102", atNode(n.id),
                     std::string(opKindName(n.kind)) + " '" + n.name +
                         "' output shape " + out.toString() +
                         " does not match expected " + want.toString());
    };
    auto nchw_input = [&]() -> const Shape * {
        if (n.inputs.empty())
            return nullptr;
        const Shape &in = shape_of(n.inputs[0]);
        if (in.rank() != 4) {
            sink.add("SA102", atNode(n.id),
                     std::string(opKindName(n.kind)) + " '" + n.name +
                         "' input is not NCHW: " + in.toString());
            return nullptr;
        }
        return &in;
    };

    switch (n.kind) {
      case OpKind::Input:
        break;
      case OpKind::Conv2d: {
        const Shape *in = nchw_input();
        if (!in)
            break;
        if (!windowUsable(n.win)) {
            sink.add("SA102", atNode(n.id),
                     "conv '" + n.name + "' has degenerate window " +
                         n.win.toString());
            break;
        }
        expect({in->dim(0), n.out_channels, n.win.outH(in->dim(2)),
                n.win.outW(in->dim(3))});
        break;
      }
      case OpKind::MaxPool2d:
      case OpKind::AvgPool2d: {
        const Shape *in = nchw_input();
        if (!in)
            break;
        if (!windowUsable(n.win)) {
            sink.add("SA102", atNode(n.id),
                     "pool '" + n.name + "' has degenerate window " +
                         n.win.toString());
            break;
        }
        expect({in->dim(0), in->dim(1), n.win.outH(in->dim(2)),
                n.win.outW(in->dim(3))});
        break;
      }
      case OpKind::GlobalAvgPool: {
        const Shape *in = nchw_input();
        if (in)
            expect({in->dim(0), in->dim(1), 1, 1});
        break;
      }
      case OpKind::BatchNorm:
      case OpKind::ReLU:
        if (!n.inputs.empty())
            expect(shape_of(n.inputs[0]));
        break;
      case OpKind::Linear: {
        if (n.inputs.empty())
            break;
        const Shape &in = shape_of(n.inputs[0]);
        if (in.rank() != 2)
            sink.add("SA102", atNode(n.id),
                     "linear '" + n.name + "' input is not [N, F]: " +
                         in.toString());
        else
            expect({in.dim(0), n.out_channels});
        break;
      }
      case OpKind::Flatten: {
        if (n.inputs.empty())
            break;
        const Shape &in = shape_of(n.inputs[0]);
        if (in.rank() >= 1 && in.dim(0) > 0)
            expect({in.dim(0), in.numel() / in.dim(0)});
        break;
      }
      case OpKind::Add: {
        for (TensorId t : n.inputs)
            if (shape_of(t) != out)
                sink.add("SA102", atNode(n.id),
                         "add '" + n.name + "' mixes shapes " +
                             shape_of(t).toString() + " and " +
                             out.toString());
        break;
      }
      case OpKind::Slice: {
        const Shape *in = nchw_input();
        if (!in)
            break;
        if (n.h_start < 0 || n.h_start >= n.h_end ||
            n.h_end > in->dim(2) || n.w_start < 0 ||
            n.w_start >= n.w_end || n.w_end > in->dim(3)) {
            sink.add("SA504", atNode(n.id),
                     "slice '" + n.name + "' region [" +
                         std::to_string(n.h_start) + "," +
                         std::to_string(n.h_end) + ")x[" +
                         std::to_string(n.w_start) + "," +
                         std::to_string(n.w_end) +
                         ") is empty or outside input " +
                         in->toString());
            break;
        }
        expect({in->dim(0), in->dim(1), n.h_end - n.h_start,
                n.w_end - n.w_start});
        break;
      }
      case OpKind::Concat: {
        if (n.concat_dim != 2 && n.concat_dim != 3) {
            sink.add("SA504", atNode(n.id),
                     "concat '" + n.name + "' along dim " +
                         std::to_string(n.concat_dim) +
                         " (must be 2 or 3)");
            break;
        }
        if (n.inputs.empty())
            break;
        int64_t total = 0;
        bool ok = true;
        const Shape &first = shape_of(n.inputs[0]);
        for (TensorId t : n.inputs) {
            const Shape &in = shape_of(t);
            if (in.rank() != 4) {
                ok = false;
                break;
            }
            for (int d = 0; d < 4; ++d)
                if (d != n.concat_dim && in.dim(d) != first.dim(d))
                    ok = false;
            total += in.dim(n.concat_dim);
        }
        if (!ok) {
            sink.add("SA504", atNode(n.id),
                     "concat '" + n.name +
                         "' inputs disagree outside dim " +
                         std::to_string(n.concat_dim));
            break;
        }
        Shape want = first;
        want.setDim(n.concat_dim, total);
        if (out != want)
            sink.add("SA504", atNode(n.id),
                     "concat '" + n.name + "' inputs tile " +
                         want.toString() + " but the output is " +
                         out.toString());
        break;
      }
    }
}

} // namespace

std::vector<Diagnostic>
analyzeGraph(const Graph &graph)
{
    DiagnosticSink sink;
    const auto &nodes = graph.nodes();
    const auto &tensors = graph.tensors();

    // --- Reference validity (SA101) + index identity -------------------
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        if (n.id != static_cast<NodeId>(i))
            sink.add("SA101", atNode(n.id),
                     "node at position " + std::to_string(i) +
                         " carries id " + std::to_string(n.id));
        if (!validTensorId(graph, n.output))
            sink.add("SA101", atNode(n.id),
                     "node '" + n.name + "' output tensor id " +
                         std::to_string(n.output) + " out of range");
        for (TensorId t : n.inputs)
            if (!validTensorId(graph, t))
                sink.add("SA101", atNode(n.id),
                         "node '" + n.name + "' input tensor id " +
                             std::to_string(t) + " out of range");
        for (ParamId p : n.params)
            if (p < 0 || p >= static_cast<ParamId>(graph.params().size()))
                sink.add("SA101", atNode(n.id),
                         "node '" + n.name + "' param id " +
                             std::to_string(p) + " out of range");
    }
    for (size_t i = 0; i < tensors.size(); ++i) {
        const TensorInfo &t = tensors[i];
        if (t.id != static_cast<TensorId>(i))
            sink.add("SA101", atTensor(t.id),
                     "tensor at position " + std::to_string(i) +
                         " carries id " + std::to_string(t.id));
        if (!validNodeId(graph, t.producer))
            sink.add("SA101", atTensor(t.id),
                     "tensor '" + t.name + "' has no valid producer");
        for (NodeId c : t.consumers)
            if (!validNodeId(graph, c))
                sink.add("SA101", atTensor(t.id),
                         "tensor '" + t.name + "' consumer node id " +
                             std::to_string(c) + " out of range");
    }
    if (sink.hasErrors())
        return sink.take(); // cross-link checks would chase bad ids

    // --- Producer/consumer cross-links (SA104) -------------------------
    for (const TensorInfo &t : tensors) {
        if (graph.node(t.producer).output != t.id)
            sink.add("SA104", atTensor(t.id),
                     "tensor '" + t.name + "' names node " +
                         std::to_string(t.producer) +
                         " as producer, but that node outputs tensor " +
                         std::to_string(graph.node(t.producer).output));
        for (NodeId c : t.consumers) {
            const auto &ins = graph.node(c).inputs;
            if (std::find(ins.begin(), ins.end(), t.id) == ins.end())
                sink.add("SA104", atTensor(t.id),
                         "tensor '" + t.name + "' lists node " +
                             std::to_string(c) +
                             " as consumer, but that node does not "
                             "read it");
        }
    }
    for (const Node &n : nodes) {
        for (TensorId t : n.inputs) {
            const auto &cs = graph.tensor(t).consumers;
            if (std::find(cs.begin(), cs.end(), n.id) == cs.end())
                sink.add("SA104", atNode(n.id),
                         "node '" + n.name + "' reads tensor " +
                             std::to_string(t) +
                             " which does not list it as a consumer");
        }
    }

    // --- Topological (construction) order (SA103) ----------------------
    for (const Node &n : nodes) {
        for (TensorId t : n.inputs) {
            if (graph.tensor(t).producer >= n.id)
                sink.add("SA103", atNode(n.id),
                         "node '" + n.name + "' consumes tensor " +
                             std::to_string(t) +
                             " produced at or after its own position");
        }
        if (validTensorId(graph, n.output) &&
            graph.tensor(n.output).producer != n.id &&
            graph.node(graph.tensor(n.output).producer).output ==
                n.output)
            sink.add("SA103", atNode(n.id),
                     "tensor " + std::to_string(n.output) +
                         " is written by more than one node");
    }

    // --- Exactly one input node and one output tensor (SA105) ----------
    int input_nodes = 0;
    for (const Node &n : nodes)
        input_nodes += n.kind == OpKind::Input ? 1 : 0;
    if (input_nodes != 1)
        sink.add("SA105", {},
                 "graph has " + std::to_string(input_nodes) +
                     " Input nodes (want exactly 1)");
    int sinks = 0;
    for (const TensorInfo &t : tensors)
        sinks += t.consumers.empty() ? 1 : 0;
    if (sinks != 1)
        sink.add("SA105", {},
                 "graph has " + std::to_string(sinks) +
                     " tensors without consumers (want exactly 1 "
                     "output)");

    // --- Shapes + slice/concat geometry (SA102 / SA504) ----------------
    if (!sink.hasErrors())
        for (const Node &n : nodes)
            checkNodeShapes(graph, n, sink);

    return sink.take();
}

// ---------------------------------------------------------------------------
// Suite 2: storage-assignment legality (SA2xx)
// ---------------------------------------------------------------------------

std::vector<Diagnostic>
analyzeStorage(const Graph &graph, const StorageAssignment &assignment)
{
    DiagnosticSink sink;
    const size_t n_tensors = graph.tensors().size();
    const size_t n_tso = assignment.tsos.size();

    if (assignment.value_tso.size() != n_tensors ||
        assignment.grad_tso.size() != n_tensors) {
        sink.add("SA307", {},
                 "storage assignment maps " +
                     std::to_string(assignment.value_tso.size()) +
                     " value / " +
                     std::to_string(assignment.grad_tso.size()) +
                     " grad tensors, graph has " +
                     std::to_string(n_tensors));
        return sink.take();
    }

    // The needed-in-backward set mirrors assignStorage, which always
    // decides in-place-ReLU legality with default BackwardOptions.
    const auto topo = [&] {
        std::vector<NodeId> order;
        for (const Node &n : graph.nodes())
            order.push_back(n.id);
        return order;
    }();
    const auto needed = tensorsNeededInBackward(graph, topo);

    // --- Mapping validity + per-TSO membership -------------------------
    std::vector<std::vector<TensorId>> value_of(n_tso), grad_of(n_tso);
    for (const TensorInfo &t : graph.tensors()) {
        const TsoId v = assignment.value_tso[static_cast<size_t>(t.id)];
        if (v == kInvalidTso)
            sink.add("SA205", atTensor(t.id),
                     "tensor '" + t.name + "' has no value TSO");
        else if (!validTsoId(assignment, v))
            sink.add("SA205", atTensor(t.id),
                     "tensor '" + t.name +
                         "' maps to out-of-range value TSO " +
                         std::to_string(v));
        else
            value_of[static_cast<size_t>(v)].push_back(t.id);

        const TsoId g = assignment.grad_tso[static_cast<size_t>(t.id)];
        const bool from_input =
            validNodeId(graph, t.producer) &&
            graph.node(t.producer).kind == OpKind::Input;
        if (g == kInvalidTso) {
            if (!from_input)
                sink.add("SA205", atTensor(t.id),
                         "tensor '" + t.name + "' has no gradient TSO");
        } else if (!validTsoId(assignment, g)) {
            sink.add("SA205", atTensor(t.id),
                     "tensor '" + t.name +
                         "' maps to out-of-range gradient TSO " +
                         std::to_string(g));
        } else {
            grad_of[static_cast<size_t>(g)].push_back(t.id);
        }
    }

    // --- Refcounts, sizes, value/grad disjointness ---------------------
    for (size_t i = 0; i < n_tso; ++i) {
        const Tso &tso = assignment.tsos[i];
        const int mapped = static_cast<int>(value_of[i].size()) +
                           static_cast<int>(grad_of[i].size());
        if (mapped > 0 && tso.ref_count <= 0)
            sink.add("SA201", atTso(static_cast<int32_t>(i)),
                     "TSO '" + tso.name + "' refcount " +
                         std::to_string(tso.ref_count) +
                         " underflows with " + std::to_string(mapped) +
                         " mapped tensors");
        else if (tso.ref_count != mapped)
            sink.add("SA201",
                     mapped == 0 ? DiagSeverity::Warning
                                 : DiagSeverity::Error,
                     atTso(static_cast<int32_t>(i)),
                     "TSO '" + tso.name + "' refcount " +
                         std::to_string(tso.ref_count) + " but " +
                         std::to_string(mapped) + " tensors map to it");
        if (!value_of[i].empty() && !grad_of[i].empty())
            sink.add("SA206", atTso(static_cast<int32_t>(i)),
                     "TSO '" + tso.name +
                         "' holds both forward values and gradients");
        for (TensorId t : value_of[i])
            if (tensorBytes(graph, t) > tso.bytes)
                sink.add("SA204", atTso(static_cast<int32_t>(i)),
                         "tensor '" + graph.tensor(t).name + "' needs " +
                             std::to_string(tensorBytes(graph, t)) +
                             " bytes but TSO '" + tso.name + "' has " +
                             std::to_string(tso.bytes));
        for (TensorId t : grad_of[i])
            if (tensorBytes(graph, t) > tso.bytes)
                sink.add("SA204", atTso(static_cast<int32_t>(i)),
                         "gradient of '" + graph.tensor(t).name +
                             "' needs " +
                             std::to_string(tensorBytes(graph, t)) +
                             " bytes but TSO '" + tso.name + "' has " +
                             std::to_string(tso.bytes));
    }

    // --- Value-sharing legality (Sec. 4.2: in-place ReLU, flatten) -----
    for (size_t i = 0; i < n_tso; ++i) {
        auto &members = value_of[i];
        if (members.size() < 2)
            continue;
        std::sort(members.begin(), members.end(),
                  [&](TensorId a, TensorId b) {
                      return graph.tensor(a).producer <
                             graph.tensor(b).producer;
                  });
        std::set<TensorId> in_set(members.begin(), members.end());
        // members[0] is the base allocation; each later member must be
        // a legal view of an earlier one.
        for (size_t k = 1; k < members.size(); ++k) {
            const TensorInfo &t = graph.tensor(members[k]);
            const Node &p = graph.node(t.producer);
            const bool chained =
                !p.inputs.empty() && in_set.count(p.inputs[0]);
            bool legal = false;
            std::string why;
            if (!chained) {
                why = "does not alias its own input";
            } else if (p.kind == OpKind::Flatten) {
                legal = true; // pure view
            } else if (p.kind == OpKind::ReLU) {
                const TensorInfo &in = graph.tensor(p.inputs[0]);
                if (in.consumers.size() != 1)
                    why = "in-place ReLU over a tensor with " +
                          std::to_string(in.consumers.size()) +
                          " consumers";
                else if (needed.count(in.id))
                    why = "in-place ReLU over a tensor needed again "
                          "in backward";
                else
                    legal = true;
            } else {
                why = std::string(opKindName(p.kind)) +
                      " may not write in place";
            }
            if (!legal)
                sink.add("SA202", atTensor(t.id),
                         "tensor '" + t.name + "' shares TSO " +
                             std::to_string(i) + " illegally: " + why);
        }
    }

    // --- Gradient-sharing legality (summation-error sharing) -----------
    for (size_t i = 0; i < n_tso; ++i) {
        const auto &members = grad_of[i];
        if (members.size() < 2)
            continue;
        std::set<TensorId> in_set(members.begin(), members.end());
        int roots = 0;
        for (TensorId t : members) {
            // t's gradient may share iff t feeds an Add whose output
            // gradient lives in the same TSO (dL/dx_i == dL/dy).
            bool via_add = false;
            for (NodeId c : graph.tensor(t).consumers) {
                const Node &n = graph.node(c);
                if (n.kind == OpKind::Add && in_set.count(n.output))
                    via_add = true;
            }
            if (!via_add) {
                ++roots;
                if (roots > 1)
                    sink.add("SA203", atTensor(t),
                             "gradient of '" + graph.tensor(t).name +
                                 "' shares TSO " + std::to_string(i) +
                                 " without a summation-error "
                                 "justification");
            }
        }
    }
    return sink.take();
}

// ---------------------------------------------------------------------------
// Suite 3: offload/prefetch schedule (SA3xx)
// ---------------------------------------------------------------------------

namespace {

/** The four critical moments of one offloaded TSO, -1 = absent. */
struct Moments
{
    int start_offload = -1;
    int sync_offload = -1;
    int start_prefetch = -1;
    int sync_prefetch = -1;
    bool duplicated = false;
};

} // namespace

std::vector<Diagnostic>
analyzeSchedule(const Graph &graph, const StorageAssignment &assignment,
                const MemoryPlan &plan, const AnalyzerOptions &options)
{
    DiagnosticSink sink;
    const int total = static_cast<int>(plan.steps.size());
    const size_t n_tso = assignment.tsos.size();

    // --- Structure (SA307) ---------------------------------------------
    if (plan.steps.size() != plan.actions.size()) {
        sink.add("SA307", {},
                 "plan has " + std::to_string(plan.steps.size()) +
                     " steps but " +
                     std::to_string(plan.actions.size()) + " actions");
        return sink.take();
    }
    if (assignment.value_tso.size() != graph.tensors().size()) {
        sink.add("SA307", {},
                 "storage assignment does not belong to this graph");
        return sink.take();
    }
    if (plan.tso_stream.size() != n_tso)
        sink.add("SA307", {},
                 "plan stream table covers " +
                     std::to_string(plan.tso_stream.size()) +
                     " TSOs, assignment has " + std::to_string(n_tso));
    if (plan.forward_steps < 0 || plan.forward_steps > total)
        sink.add("SA307", {},
                 "forward_steps " + std::to_string(plan.forward_steps) +
                     " outside [0, " + std::to_string(total) + "]");
    bool steps_ok = true;
    for (int i = 0; i < total; ++i) {
        const ExecStep &s = plan.steps[static_cast<size_t>(i)];
        if (!validNodeId(graph, s.node)) {
            DiagLocation loc;
            loc.step = i;
            sink.add("SA307", loc,
                     "step node id " + std::to_string(s.node) +
                         " out of range");
            steps_ok = false;
            continue;
        }
        const bool should_be_backward =
            i >= plan.forward_steps && plan.forward_steps >= 0 &&
            plan.forward_steps <= total;
        if (s.backward != should_be_backward) {
            DiagLocation loc;
            loc.step = i;
            loc.node = s.node;
            sink.add("SA307", loc,
                     std::string(s.backward ? "backward" : "forward") +
                         " step on the wrong side of forward_steps");
        }
    }
    if (!steps_ok || sink.hasErrors())
        return sink.take();

    // --- Replay geometry ------------------------------------------------
    std::vector<int> fwd_step_of(graph.nodes().size(), -1);
    for (int i = 0; i < plan.forward_steps; ++i)
        fwd_step_of[static_cast<size_t>(
            plan.steps[static_cast<size_t>(i)].node)] = i;

    std::vector<int> last_write(n_tso, -1), last_fwd_read(n_tso, -1),
        first_bwd_use(n_tso, -1);
    for (const TensorInfo &t : graph.tensors()) {
        const TsoId tso = assignment.value_tso[static_cast<size_t>(t.id)];
        if (!validTsoId(assignment, tso))
            continue;
        const int w = validNodeId(graph, t.producer)
                          ? fwd_step_of[static_cast<size_t>(t.producer)]
                          : -1;
        last_write[static_cast<size_t>(tso)] =
            std::max(last_write[static_cast<size_t>(tso)], w);
        for (NodeId c : t.consumers) {
            const int r = fwd_step_of[static_cast<size_t>(c)];
            last_fwd_read[static_cast<size_t>(tso)] =
                std::max(last_fwd_read[static_cast<size_t>(tso)], r);
        }
    }
    for (int i = plan.forward_steps; i < total; ++i) {
        const Node &n =
            graph.node(plan.steps[static_cast<size_t>(i)].node);
        for (TensorId t : neededForwardTensors(graph, n, options.backward)) {
            const TsoId tso =
                assignment.value_tso[static_cast<size_t>(t)];
            if (!validTsoId(assignment, tso))
                continue;
            auto &use = first_bwd_use[static_cast<size_t>(tso)];
            if (use < 0)
                use = i;
        }
    }

    // --- Collect moments; flag stray actions (SA308) --------------------
    std::map<TsoId, Moments> moments;
    auto record = [&](int step, TsoId tso, int Moments::*field,
                      const char *what) {
        if (!validTsoId(assignment, tso)) {
            sink.add("SA308", atTso(tso, step),
                     std::string(what) + " action on out-of-range TSO " +
                         std::to_string(tso));
            return;
        }
        if (!plan.offloaded.count(tso)) {
            sink.add("SA308", atTso(tso, step),
                     std::string(what) + " action on TSO '" +
                         assignment.tso(tso).name +
                         "' which is not in the offloaded set");
            return;
        }
        Moments &m = moments[tso];
        if (m.*field >= 0)
            m.duplicated = true;
        else
            m.*field = step;
    };
    for (int i = 0; i < total; ++i) {
        const StepActions &a = plan.actions[static_cast<size_t>(i)];
        for (TsoId t : a.start_offload)
            record(i, t, &Moments::start_offload, "offload");
        for (TsoId t : a.sync_offload_free)
            record(i, t, &Moments::sync_offload, "offload-sync");
        for (TsoId t : a.start_prefetch)
            record(i, t, &Moments::start_prefetch, "prefetch");
        for (TsoId t : a.sync_prefetch)
            record(i, t, &Moments::sync_prefetch, "prefetch-sync");
    }

    // --- Per-TSO four-moment checks -------------------------------------
    for (TsoId tso : plan.offloaded) {
        if (!validTsoId(assignment, tso)) {
            sink.add("SA308", atTso(tso),
                     "offloaded set contains out-of-range TSO " +
                         std::to_string(tso));
            continue;
        }
        const std::string name = assignment.tso(tso).name;
        const Moments m = moments[tso]; // zero-init if never seen
        const Moments missing_probe;
        if (m.duplicated)
            sink.add("SA301", atTso(tso),
                     "TSO '" + name +
                         "' has a duplicated critical moment");
        auto missing = [&](int v, const char *what) {
            if (v < 0)
                sink.add("SA301", atTso(tso),
                         "offloaded TSO '" + name + "' has no " + what +
                             " moment");
            return v < 0;
        };
        const bool incomplete =
            int(missing(m.start_offload, "start-of-offload")) +
                int(missing(m.sync_offload, "end-of-offload")) +
                int(missing(m.start_prefetch, "start-of-prefetch")) +
                int(missing(m.sync_prefetch, "end-of-prefetch")) >
            0;
        if (incomplete)
            continue;

        const size_t i = static_cast<size_t>(tso);
        if (m.start_offload > m.sync_offload)
            sink.add("SA302", atTso(tso, m.start_offload),
                     "TSO '" + name + "' offload sync at step " +
                         std::to_string(m.sync_offload) +
                         " precedes its start at step " +
                         std::to_string(m.start_offload));
        if (m.start_offload >= plan.forward_steps)
            sink.add("SA302", atTso(tso, m.start_offload),
                     "TSO '" + name +
                         "' offload starts in the backward pass");
        if (m.start_offload <= last_write[i])
            sink.add("SA302", atTso(tso, m.start_offload),
                     "TSO '" + name + "' offload starts at step " +
                         std::to_string(m.start_offload) +
                         " but the TSO is still written at step " +
                         std::to_string(last_write[i]));
        if (m.sync_offload < last_fwd_read[i])
            sink.add("SA304", atTso(tso, m.sync_offload),
                     "TSO '" + name + "' is freed at step " +
                         std::to_string(m.sync_offload) +
                         " but still read forward at step " +
                         std::to_string(last_fwd_read[i]));
        if (m.start_prefetch <= m.sync_offload)
            sink.add("SA303", atTso(tso, m.start_prefetch),
                     "TSO '" + name + "' prefetch at step " +
                         std::to_string(m.start_prefetch) +
                         " is issued before the device copy is freed "
                         "at step " +
                         std::to_string(m.sync_offload));
        if (m.start_prefetch < plan.forward_steps)
            sink.add("SA303", atTso(tso, m.start_prefetch),
                     "TSO '" + name +
                         "' prefetch starts in the forward pass");
        if (m.start_prefetch > m.sync_prefetch)
            sink.add("SA303", atTso(tso, m.start_prefetch),
                     "TSO '" + name + "' prefetch sync at step " +
                         std::to_string(m.sync_prefetch) +
                         " precedes its start at step " +
                         std::to_string(m.start_prefetch));
        if (first_bwd_use[i] < 0)
            sink.add("SA304", DiagSeverity::Warning, atTso(tso),
                     "TSO '" + name +
                         "' is offloaded but never used in backward");
        else if (m.sync_prefetch > first_bwd_use[i])
            sink.add("SA304", atTso(tso, first_bwd_use[i]),
                     "TSO '" + name + "' is first used at step " +
                         std::to_string(first_bwd_use[i]) +
                         " but its prefetch only syncs at step " +
                         std::to_string(m.sync_prefetch));
        if (i < plan.tso_stream.size() &&
            plan.tso_stream[i] < 0)
            sink.add("SA305", atTso(tso),
                     "TSO '" + name +
                         "' is transferred but has no memory stream");
        (void)missing_probe;
    }

    // --- Cross-stream event-graph acyclicity (SA306) ---------------------
    // Nodes: step starts (2k), step ends (2k+1), then transfers.
    // Edges: program order, issue -> transfer -> sync-end, and FIFO
    // order between transfers sharing a memory stream.
    {
        struct Transfer
        {
            TsoId tso;
            int issue;
            int sync;
            int stream;
            bool d2h;
        };
        std::vector<Transfer> transfers;
        for (const auto &[tso, m] : moments) {
            if (m.duplicated || m.start_offload < 0 ||
                m.sync_offload < 0 || m.start_prefetch < 0 ||
                m.sync_prefetch < 0)
                continue;
            const int stream =
                static_cast<size_t>(tso) < plan.tso_stream.size()
                    ? plan.tso_stream[static_cast<size_t>(tso)]
                    : -1;
            transfers.push_back(
                {tso, m.start_offload, m.sync_offload, stream, true});
            transfers.push_back(
                {tso, m.start_prefetch, m.sync_prefetch, stream, false});
        }
        const int step_nodes = 2 * total;
        const int n_nodes =
            step_nodes + static_cast<int>(transfers.size());
        std::vector<std::vector<int>> adj(
            static_cast<size_t>(n_nodes));
        std::vector<int> indeg(static_cast<size_t>(n_nodes), 0);
        auto edge = [&](int a, int b) {
            adj[static_cast<size_t>(a)].push_back(b);
            ++indeg[static_cast<size_t>(b)];
        };
        for (int s = 0; s < total; ++s) {
            edge(2 * s, 2 * s + 1);
            if (s + 1 < total)
                edge(2 * s + 1, 2 * (s + 1));
        }
        for (size_t k = 0; k < transfers.size(); ++k) {
            const Transfer &t = transfers[k];
            const int node = step_nodes + static_cast<int>(k);
            edge(2 * t.issue, node);          // starts after issue step
            edge(node, 2 * t.sync + 1);       // done before sync end
        }
        // FIFO per stream, ordered by issue step (ties: d2h first,
        // then TSO id — the order the planner emits them).
        std::map<int, std::vector<size_t>> by_stream;
        for (size_t k = 0; k < transfers.size(); ++k)
            if (transfers[k].stream >= 0)
                by_stream[transfers[k].stream].push_back(k);
        for (auto &[stream, list] : by_stream) {
            std::sort(list.begin(), list.end(),
                      [&](size_t a, size_t b) {
                          const Transfer &x = transfers[a];
                          const Transfer &y = transfers[b];
                          if (x.issue != y.issue)
                              return x.issue < y.issue;
                          if (x.d2h != y.d2h)
                              return x.d2h;
                          return x.tso < y.tso;
                      });
            for (size_t k = 1; k < list.size(); ++k)
                edge(step_nodes + static_cast<int>(list[k - 1]),
                     step_nodes + static_cast<int>(list[k]));
        }
        // Kahn.
        std::vector<int> queue;
        for (int v = 0; v < n_nodes; ++v)
            if (indeg[static_cast<size_t>(v)] == 0)
                queue.push_back(v);
        int visited = 0;
        while (!queue.empty()) {
            const int v = queue.back();
            queue.pop_back();
            ++visited;
            for (int w : adj[static_cast<size_t>(v)])
                if (--indeg[static_cast<size_t>(w)] == 0)
                    queue.push_back(w);
        }
        if (visited < n_nodes) {
            std::ostringstream cyc;
            cyc << "event synchronization cycle through transfers of "
                   "TSOs:";
            for (size_t k = 0; k < transfers.size(); ++k)
                if (indeg[step_nodes + k] > 0)
                    cyc << ' ' << transfers[k].tso
                        << (transfers[k].d2h ? "(offload)"
                                             : "(prefetch)");
            sink.add("SA306", {}, cyc.str());
        }
    }
    return sink.take();
}

// ---------------------------------------------------------------------------
// Suite 4: static layout (SA4xx)
// ---------------------------------------------------------------------------

std::vector<Diagnostic>
analyzeLayout(const Graph &graph, const StorageAssignment &assignment,
              const MemoryPlan &plan, const StaticMemoryPlan &static_plan,
              const AnalyzerOptions &options, int *checked_accesses)
{
    DiagnosticSink sink;
    const int total = static_cast<int>(plan.steps.size());
    int accesses = 0;
    if (checked_accesses != nullptr)
        *checked_accesses = 0;

    if (plan.steps.size() != plan.actions.size() ||
        assignment.value_tso.size() != graph.tensors().size()) {
        sink.add("SA307", {},
                 "plan or storage assignment does not belong to this "
                 "graph");
        return sink.take();
    }
    for (const ExecStep &s : plan.steps)
        if (!validNodeId(graph, s.node)) {
            sink.add("SA307", {},
                     "plan step node id " + std::to_string(s.node) +
                         " out of range");
            return sink.take();
        }

    // --- Interval sanity (SA404 / SA405) --------------------------------
    const int64_t pool_bytes =
        static_plan.device_general_peak - static_plan.workspace_bytes;
    for (size_t k = 0; k < static_plan.intervals.size(); ++k) {
        const TsoInterval &iv = static_plan.intervals[k];
        const DiagLocation loc = atTso(iv.tso, iv.alloc_step);
        if (!validTsoId(assignment, iv.tso)) {
            sink.add("SA404", loc,
                     "interval references out-of-range TSO " +
                         std::to_string(iv.tso));
            continue;
        }
        if (iv.alloc_step < 0 || iv.free_step >= total ||
            iv.alloc_step > iv.free_step)
            sink.add("SA404", loc,
                     "interval of TSO '" + assignment.tso(iv.tso).name +
                         "' spans invalid steps [" +
                         std::to_string(iv.alloc_step) + ", " +
                         std::to_string(iv.free_step) + "]");
        if (iv.addr < 0)
            sink.add("SA404", loc,
                     "interval of TSO '" + assignment.tso(iv.tso).name +
                         "' was never placed in the pool");
        else if (iv.addr + iv.bytes > pool_bytes)
            sink.add("SA404", loc,
                     "interval of TSO '" + assignment.tso(iv.tso).name +
                         "' ends at " +
                         std::to_string(iv.addr + iv.bytes) +
                         ", beyond the pool high-water mark " +
                         std::to_string(pool_bytes));
        if (iv.bytes != assignment.tso(iv.tso).bytes)
            sink.add("SA405", loc,
                     "interval of TSO '" + assignment.tso(iv.tso).name +
                         "' covers " + std::to_string(iv.bytes) +
                         " bytes, the TSO needs " +
                         std::to_string(assignment.tso(iv.tso).bytes));
    }

    // --- Pool overlap between simultaneously-live intervals (SA402) -----
    // A legal TSO share maps several tensors to ONE TSO, hence one
    // interval; two distinct intervals alive at once must never share
    // pool bytes.
    for (size_t a = 0; a < static_plan.intervals.size(); ++a) {
        for (size_t b = a + 1; b < static_plan.intervals.size(); ++b) {
            const TsoInterval &x = static_plan.intervals[a];
            const TsoInterval &y = static_plan.intervals[b];
            if (x.alloc_step > y.free_step ||
                y.alloc_step > x.free_step)
                continue;
            ++accesses;
            if (x.addr < 0 || y.addr < 0)
                continue; // already SA404
            if (!(x.addr + x.bytes <= y.addr ||
                  y.addr + y.bytes <= x.addr))
                sink.add(
                    "SA402", atTso(x.tso, std::max(x.alloc_step,
                                                   y.alloc_step)),
                    "simultaneously-live intervals of TSO " +
                        std::to_string(x.tso) + " and TSO " +
                        std::to_string(y.tso) +
                        " overlap in the pool at [" +
                        std::to_string(std::max(x.addr, y.addr)) + ", " +
                        std::to_string(std::min(x.addr + x.bytes,
                                                y.addr + y.bytes)) +
                        ")");
        }
    }

    // --- Every planned access inside a live interval (SA401/SA403) ------
    std::map<TsoId, std::vector<const TsoInterval *>> value_intervals,
        grad_intervals;
    for (const TsoInterval &iv : static_plan.intervals)
        (iv.is_gradient ? grad_intervals : value_intervals)[iv.tso]
            .push_back(&iv);
    auto resident =
        [&](const std::map<TsoId, std::vector<const TsoInterval *>>
                &table,
            TsoId tso, int step) {
            auto it = table.find(tso);
            if (it == table.end())
                return false;
            for (const TsoInterval *iv : it->second)
                if (iv->alloc_step <= step && step <= iv->free_step)
                    return true;
            return false;
        };
    auto check_value = [&](TensorId t, int step, const char *why) {
        ++accesses;
        const TsoId tso = assignment.value_tso[static_cast<size_t>(t)];
        DiagLocation loc = atTso(tso, step);
        loc.tensor = t;
        if (!validTsoId(assignment, tso)) {
            sink.add("SA403", loc,
                     "tensor '" + graph.tensor(t).name +
                         "' without a TSO used for " + why);
            return;
        }
        if (!resident(value_intervals, tso, step))
            sink.add("SA401", loc,
                     "value of '" + graph.tensor(t).name + "' (" + why +
                         ") not device-resident");
    };
    auto check_grad = [&](TensorId t, int step, const char *why) {
        const TsoId tso = assignment.grad_tso[static_cast<size_t>(t)];
        if (tso == kInvalidTso)
            return; // no gradient flows here (network input)
        ++accesses;
        DiagLocation loc = atTso(tso, step);
        loc.tensor = t;
        if (!validTsoId(assignment, tso)) {
            sink.add("SA403", loc,
                     "gradient of '" + graph.tensor(t).name +
                         "' maps to an out-of-range TSO (" + why + ")");
            return;
        }
        if (!resident(grad_intervals, tso, step))
            sink.add("SA401", loc,
                     "gradient of '" + graph.tensor(t).name + "' (" +
                         why + ") not device-resident");
    };

    for (int step = 0; step < total; ++step) {
        const ExecStep &s = plan.steps[static_cast<size_t>(step)];
        const Node &n = graph.node(s.node);
        if (!s.backward) {
            for (TensorId t : n.inputs)
                check_value(t, step, "fwd input");
            if (validTensorId(graph, n.output))
                check_value(n.output, step, "fwd output");
        } else {
            check_grad(n.output, step, "bwd upstream");
            for (TensorId t :
                 neededForwardTensors(graph, n, options.backward))
                check_value(t, step, "bwd reuse");
            for (TensorId t : n.inputs)
                check_grad(t, step, "bwd downstream");
        }
    }
    if (checked_accesses != nullptr)
        *checked_accesses = accesses;
    return sink.take();
}

// ---------------------------------------------------------------------------
// Suite 5: split-scheme validity (SA5xx)
// ---------------------------------------------------------------------------

std::vector<Diagnostic>
lintSplitScheme(const WindowParams1d &op, int64_t w,
                const SplitScheme1d &scheme)
{
    DiagnosticSink sink;
    if (op.k < 1 || op.s < 1) {
        sink.add("SA502", {},
                 "window parameters k=" + std::to_string(op.k) +
                     " s=" + std::to_string(op.s) + " are degenerate");
        return sink.take();
    }
    if (scheme.pieces.empty()) {
        sink.add("SA501", {}, "split scheme has no pieces");
        return sink.take();
    }
    const int64_t l = op.outExtent(w);
    const int n = scheme.parts();

    // --- Output tiling (SA501) ------------------------------------------
    if (scheme.pieces.front().out_start != 0)
        sink.add("SA501", {},
                 "first piece produces outputs from " +
                     std::to_string(scheme.pieces.front().out_start) +
                     ", not 0");
    if (scheme.pieces.back().out_end != l)
        sink.add("SA501", {},
                 "last piece ends its outputs at " +
                     std::to_string(scheme.pieces.back().out_end) +
                     ", the op produces " + std::to_string(l));
    for (int i = 0; i < n; ++i) {
        const SplitPiece1d &p = scheme.pieces[static_cast<size_t>(i)];
        if (p.outLen() <= 0)
            sink.add("SA501", {},
                     "piece " + std::to_string(i) +
                         " produces no outputs");
        if (i + 1 < n &&
            p.out_end !=
                scheme.pieces[static_cast<size_t>(i) + 1].out_start)
            sink.add("SA501", {},
                     "pieces " + std::to_string(i) + " and " +
                         std::to_string(i + 1) +
                         " leave a gap or overlap in the output "
                         "partition (" +
                         std::to_string(p.out_end) + " vs " +
                         std::to_string(
                             scheme.pieces[static_cast<size_t>(i) + 1]
                                 .out_start) +
                         ")");
    }

    // --- Input partition within Eqs. 1-2 (SA502) ------------------------
    if (scheme.pieces.front().in_start != 0)
        sink.add("SA502", {},
                 "I_0 = " +
                     std::to_string(scheme.pieces.front().in_start) +
                     ", Eq. 3 requires I_0 = 0");
    if (scheme.pieces.back().in_end != w)
        sink.add("SA502", {},
                 "last piece consumes inputs up to " +
                     std::to_string(scheme.pieces.back().in_end) +
                     ", the input extent is " + std::to_string(w));
    for (int i = 0; i < n; ++i) {
        const SplitPiece1d &p = scheme.pieces[static_cast<size_t>(i)];
        if (p.inLen() <= 0)
            sink.add("SA502", {},
                     "piece " + std::to_string(i) +
                         " consumes no input");
        if (i + 1 < n &&
            p.in_end !=
                scheme.pieces[static_cast<size_t>(i) + 1].in_start)
            sink.add("SA502", {},
                     "pieces " + std::to_string(i) + " and " +
                         std::to_string(i + 1) +
                         " do not partition the input (" +
                         std::to_string(p.in_end) + " vs " +
                         std::to_string(
                             scheme.pieces[static_cast<size_t>(i) + 1]
                                 .in_start) +
                         ")");
        if (i > 0) {
            const int64_t lb = splitLowerBound(op, p.out_start);
            const int64_t ub = op.k >= op.s
                                   ? splitUpperBound(op, p.out_start)
                                   : lb;
            if (p.in_start < lb || p.in_start > ub)
                sink.add("SA502", {},
                         "I_" + std::to_string(i) + " = " +
                             std::to_string(p.in_start) +
                             " outside the legal interval [" +
                             std::to_string(lb) + ", " +
                             std::to_string(ub) + "] of Eqs. 1-2");
        }
    }

    // --- Halo padding re-derivation (Eq. 5, SA503) ----------------------
    for (int i = 0; i < n; ++i) {
        const SplitPiece1d &p = scheme.pieces[static_cast<size_t>(i)];
        const int64_t want_pad_b =
            p.in_start + op.p_b - p.out_start * op.s;
        const int64_t want_pad_e =
            i + 1 < n ? (p.out_end - 1) * op.s + op.k - op.p_b - p.in_end
                      : op.p_e;
        if (p.pad_b != want_pad_b)
            sink.add("SA503", {},
                     "piece " + std::to_string(i) + " begin padding " +
                         std::to_string(p.pad_b) + ", Eq. 5 derives " +
                         std::to_string(want_pad_b));
        if (p.pad_e != want_pad_e)
            sink.add("SA503", {},
                     "piece " + std::to_string(i) + " end padding " +
                         std::to_string(p.pad_e) + ", Eq. 5 derives " +
                         std::to_string(want_pad_e));
        const WindowParams1d local{op.k, op.s, p.pad_b, p.pad_e};
        if (p.inLen() > 0 &&
            local.outExtent(p.inLen()) != p.outLen())
            sink.add("SA503", {},
                     "piece " + std::to_string(i) +
                         " with its padding produces " +
                         std::to_string(local.outExtent(p.inLen())) +
                         " outputs, the partition expects " +
                         std::to_string(p.outLen()));
    }
    return sink.take();
}

// ---------------------------------------------------------------------------
// The whole battery
// ---------------------------------------------------------------------------

std::vector<Diagnostic>
analyzePlan(const Graph &graph, const StorageAssignment &assignment,
            const MemoryPlan &plan, const StaticMemoryPlan &static_plan,
            const AnalyzerOptions &options)
{
    std::vector<Diagnostic> diags = analyzeGraph(graph);
    if (hasErrors(diags))
        return diags; // deeper suites would chase broken references

    auto append = [&](std::vector<Diagnostic> more) {
        diags.insert(diags.end(),
                     std::make_move_iterator(more.begin()),
                     std::make_move_iterator(more.end()));
    };
    append(analyzeStorage(graph, assignment));
    append(analyzeSchedule(graph, assignment, plan, options));
    append(analyzeLayout(graph, assignment, plan, static_plan, options));
    return diags;
}

bool
lintPlansEnabled()
{
    // Re-read each call: planning is cold, and tests toggle the
    // environment variable at run time.
    const char *env = std::getenv("SCNN_LINT_PLANS");
    if (env != nullptr && *env != '\0')
        return *env != '0';
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

} // namespace scnn
