/**
 * @file
 * Diagnostics engine for the static plan/graph verifier (`scnn lint`)
 * and the runtime residency checker: severity levels, stable `SAxxx`
 * codes, op/tensor/TSO/step source locations, and text + JSON
 * renderers, so static and runtime findings share one report format.
 *
 * Codes are *stable*: once published they keep their meaning, tests
 * assert on them, and CI artifacts reference them. The full table
 * lives in diagnosticCodes() and is printed by `scnn lint --codes`.
 */
#ifndef SCNN_ANALYSIS_DIAGNOSTICS_H
#define SCNN_ANALYSIS_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace scnn {

/** How bad a finding is. Only Error fails `scnn lint`. */
enum class DiagSeverity
{
    Note,    ///< informational context
    Warning, ///< suspicious but not provably wrong
    Error    ///< the plan/graph is provably ill-formed
};

/** Human-readable severity name ("error", ...). */
const char *diagSeverityName(DiagSeverity severity);

/**
 * Where a finding points. Every field is optional (-1 = absent);
 * renderers print whichever fields are set.
 */
struct DiagLocation
{
    int32_t node = -1;   ///< NodeId in the analyzed graph
    int32_t tensor = -1; ///< TensorId in the analyzed graph
    int32_t tso = -1;    ///< TsoId in the storage assignment
    int step = -1;       ///< plan step index

    std::string toString() const;
};

/** One finding: a stable code, severity, location, and message. */
struct Diagnostic
{
    std::string code; ///< stable "SAxxx" identifier
    DiagSeverity severity = DiagSeverity::Error;
    DiagLocation loc;
    std::string message;

    /** "error[SA402] step 12 tso 5: ..." */
    std::string toString() const;
};

/** One row of the stable code registry. */
struct DiagCodeInfo
{
    const char *code;
    DiagSeverity default_severity;
    const char *summary;
};

/** The full registry of stable diagnostic codes. */
const std::vector<DiagCodeInfo> &diagnosticCodes();

/** Registry row for @p code, or nullptr for unknown codes. */
const DiagCodeInfo *findDiagnosticCode(const std::string &code);

/**
 * Collects diagnostics during an analysis pass. Emission goes through
 * the code registry, so an unregistered code is a library bug
 * (SCNN_PANIC), not a silently-invented identifier.
 */
class DiagnosticSink
{
  public:
    /** Emit with the code's default severity. */
    void add(const std::string &code, DiagLocation loc,
             std::string message);

    /** Emit with an explicit severity override. */
    void add(const std::string &code, DiagSeverity severity,
             DiagLocation loc, std::string message);

    const std::vector<Diagnostic> &items() const { return items_; }
    std::vector<Diagnostic> take() { return std::move(items_); }

    bool hasErrors() const;

  private:
    std::vector<Diagnostic> items_;
};

/** Number of findings at @p severity. */
int countBySeverity(const std::vector<Diagnostic> &diags,
                    DiagSeverity severity);

/** True if any finding is an Error. */
bool hasErrors(const std::vector<Diagnostic> &diags);

/**
 * Plain-text report: one line per finding plus a summary tail line
 * ("3 errors, 1 warning" or "no findings").
 */
std::string renderDiagnosticsText(const std::vector<Diagnostic> &diags);

/**
 * Machine-readable report: a JSON object with a "findings" array
 * (code/severity/message + the location fields that are set) and
 * per-severity counts. @p context lands verbatim in a "context"
 * string field (model name, planner, ... — empty omits it).
 */
std::string renderDiagnosticsJson(const std::vector<Diagnostic> &diags,
                                  const std::string &context = "");

} // namespace scnn

#endif // SCNN_ANALYSIS_DIAGNOSTICS_H
