/**
 * @file
 * Static plan/graph verifier (`scnn lint`): proves every plan the
 * planner (or the degradation chain) emits is well-formed *before*
 * anything executes, without running a single op. Five check suites,
 * each with stable SAxxx diagnostic codes (see diagnostics.h):
 *
 *   1. graph well-formedness            (SA1xx)
 *   2. TSO refcount & aliasing legality (SA2xx, Sec. 4.2)
 *   3. offload/prefetch ordering        (SA3xx, Sec. 4.3 / Alg. 1)
 *   4. pool overlap / live ranges       (SA4xx, Sec. 4.4)
 *   5. split-scheme validity            (SA5xx, Eqs. 1-2 and 5)
 *
 * Every entry point is total over corrupt inputs: a malformed plan
 * yields diagnostics, never a panic or an out-of-range access.
 */
#ifndef SCNN_ANALYSIS_ANALYZER_H
#define SCNN_ANALYSIS_ANALYZER_H

#include <vector>

#include "analysis/diagnostics.h"
#include "core/split_scheme.h"
#include "graph/backward.h"
#include "graph/graph.h"
#include "hmms/plan.h"
#include "hmms/static_planner.h"
#include "hmms/tso.h"

namespace scnn {

/** Knobs threaded through the plan-level checks. */
struct AnalyzerOptions
{
    /** Must match the options the plans were built with. */
    BackwardOptions backward;
};

/**
 * Suite 1: graph well-formedness — consistent shapes, no dangling
 * tensors, valid topological (construction) order, producer/consumer
 * cross-links, exactly one input and one output, and slice/concat
 * tiling geometry. Never panics, unlike Graph::validate().
 */
std::vector<Diagnostic> analyzeGraph(const Graph &graph);

/**
 * Suite 2: storage-assignment legality — stored reference counts
 * match the tensor->TSO maps (no underflow), value-TSO sharing only
 * through in-place ReLU or flatten views, gradient-TSO sharing only
 * through summation-error sharing, no TSO both value and gradient,
 * and every TSO at least as large as each tensor mapped to it.
 */
std::vector<Diagnostic>
analyzeStorage(const Graph &graph, const StorageAssignment &assignment);

/**
 * Suite 3: offload/prefetch schedule — the four critical moments of
 * every offloaded TSO exist, are unique, and are ordered; offloads
 * start only after the last forward write and free only after the
 * last forward reader; prefetches complete before the first backward
 * use; transferred TSOs carry a stream; and the cross-stream event
 * graph (compute order x per-stream FIFO x sync edges) is acyclic.
 */
std::vector<Diagnostic>
analyzeSchedule(const Graph &graph, const StorageAssignment &assignment,
                const MemoryPlan &plan, const AnalyzerOptions &options = {});

/**
 * Suite 4: static layout — every planned access falls inside a live
 * interval of its TSO, simultaneously-live intervals never share
 * pool bytes, every interval is placed inside the pool high-water
 * mark, and interval sizes agree with their TSOs.
 *
 * @param checked_accesses if non-null, receives the number of
 *        access/overlap facts examined (the residency checker's
 *        coverage metric).
 */
std::vector<Diagnostic>
analyzeLayout(const Graph &graph, const StorageAssignment &assignment,
              const MemoryPlan &plan, const StaticMemoryPlan &static_plan,
              const AnalyzerOptions &options = {},
              int *checked_accesses = nullptr);

/**
 * Suite 5: split-scheme validity — re-derives Eqs. 1-2 and the
 * corrected Eq. 5 padding formulas for @p scheme over an op with
 * input extent @p w: pieces tile input and output partitions exactly,
 * each split point lies in [lb, ub], and each patch's halo padding
 * yields exactly its output extent.
 */
std::vector<Diagnostic> lintSplitScheme(const WindowParams1d &op,
                                        int64_t w,
                                        const SplitScheme1d &scheme);

/**
 * The whole battery (suites 1-4; suite 5's graph-level facts are
 * covered by the slice/concat geometry checks of suite 1): verify a
 * Graph x Plan pair without executing anything. This is what
 * `scnn lint` runs and what the degradation chain consults before
 * accepting a fallback plan.
 */
std::vector<Diagnostic>
analyzePlan(const Graph &graph, const StorageAssignment &assignment,
            const MemoryPlan &plan, const StaticMemoryPlan &static_plan,
            const AnalyzerOptions &options = {});

/**
 * Whether the debug-build plan lint hooks in planMemory/simulatePlan
 * are active: compiled in for !NDEBUG builds, and switchable at run
 * time with SCNN_LINT_PLANS=1 (on) / SCNN_LINT_PLANS=0 (off).
 */
bool lintPlansEnabled();

} // namespace scnn

#endif // SCNN_ANALYSIS_ANALYZER_H
