/**
 * @file
 * Suite 6: parallel-execution safety (SA6xx) — a static model of the
 * work-item decompositions the fused split kernels and the executor's
 * wave scheduler actually run, precise enough to *prove* them
 * race-free instead of sampling them with TSan.
 *
 * The model is a ParallelPlan: named memory regions plus work items
 * grouped into epochs (items sharing an epoch may run concurrently;
 * epochs are separated by barriers). Every item carries its exact
 * access footprint as strided spans. analyzeParallelPlan() then
 * checks, per region:
 *
 *   SA601  same-epoch items with overlapping write sets (or a
 *          write overlapping another item's read) — a data race
 *   SA602  an access outside the region's bounds
 *   SA603  a write to a read-only region (weight panels, packed
 *          Winograd U tensors, cached panels)
 *   SA604  an access to a scratch-arena region owned by another item
 *   SA605  in an `ordered` region, a read of a slot with no write in
 *          any earlier epoch (happens-before violation)
 *   SA606  in a `serial_stats` region, same-epoch writes to one slot
 *          or epoch order disagreeing with serial order (the deferred
 *          BN running-stat determinism contract)
 *   SA608  an `exact_cover` region whose union of write sets leaves
 *          a gap (the decomposition does not tile the output)
 *   SA609  in an `ordered_accum` region, overlapping writes from the
 *          same epoch or with epoch order disagreeing with serial
 *          order — the backward halo-accumulation contract: patches
 *          sharing halo rows scatter-add into the parent gradient,
 *          which is only race-free *and* bitwise-deterministic when
 *          every overlapping pair is serialized in a fixed order
 *          (one worker owns the image; bands/patches run ascending)
 *
 * (SA607 — a *recorded* access escaping the predicted footprint — is
 * emitted by the shadow-access validator, shadow_access.h.)
 *
 * The builders mirror the engine's parallel surfaces (forward and
 * backward). They derive the decomposition from the same shared
 * helpers the kernels use (splitConvBandItems,
 * computeExecutionWaves), so the model cannot silently diverge from
 * the code it describes:
 *
 *  - buildSplitConvPlan: splitConv2dForwardFused's image x row-band
 *    items. A band writes output rows [out_start+oy0, out_start+oy1)
 *    of every output channel at the parent channel stride (one span
 *    {base, n1=oc, s1=oh*ow, len=rows*ow} per item), reads the halo
 *    rectangles of every width patch, shares the packed weight
 *    panels read-only, and owns a private scratch-arena region for
 *    its staged columns.
 *  - buildSplitPoolPlan: the image x patch items of the fused pool
 *    paths; a patch writes the block
 *    [out_start_h, out_end_h) x [out_start_w, out_end_w) of every
 *    channel ({base, n1=c, s1=oh*ow, n2=outLen_h, s2=ow,
 *    len=outLen_w}).
 *  - buildExecutorWavePlan: the executor's dependency waves over
 *    tensor slots (slot-granular, `ordered`), parameter reads, and —
 *    in training mode — the deferred BN running-stat updates as
 *    their own post-barrier serial epochs (`serial_stats`). The
 *    narrow-wave serial fallback runs a wave's nodes on the caller
 *    in wave order, which only *strengthens* the modeled
 *    happens-before edges, so one plan covers both schedules.
 *
 * analyzeParallelExecution() is the battery `scnn lint --parallel`
 * runs: the wave plan for the graph plus a split-conv/pool plan for
 * every window op at a given split grid.
 */
#ifndef SCNN_ANALYSIS_PARALLEL_MODEL_H
#define SCNN_ANALYSIS_PARALLEL_MODEL_H

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "core/split_op.h"
#include "graph/graph.h"

namespace scnn {

/**
 * A strided set of float offsets inside one region: the union of
 *   base + i1*s1 + i2*s2 + [0, len)   for i1 < n1, i2 < n2.
 * n1 = n2 = 1 degenerates to a plain interval. This is exactly the
 * shape of a band/patch footprint: (channel stride) x (row stride) x
 * contiguous row segment.
 */
struct StridedSpan
{
    int64_t base = 0;
    int64_t n1 = 1; ///< outer repeat count (e.g. channels)
    int64_t s1 = 0; ///< outer stride (e.g. oh*ow)
    int64_t n2 = 1; ///< inner repeat count (e.g. rows)
    int64_t s2 = 0; ///< inner stride (e.g. ow)
    int64_t len = 0; ///< contiguous floats per (i1, i2)

    /** A plain contiguous interval [base, base+len). */
    static StridedSpan
    interval(int64_t base, int64_t len)
    {
        return {base, 1, 0, 1, 0, len};
    }

    int64_t count() const { return n1 * n2; } ///< expanded intervals
};

/** One access of one work item. */
struct ParallelAccess
{
    int region = -1; ///< index into ParallelPlan::regions
    bool write = false;
    StridedSpan span;
};

/** One unit of concurrent work (a band, a patch, a graph node). */
struct ParallelItem
{
    std::string name;
    /** Barrier group: items sharing an epoch may run concurrently;
     * all of epoch e completes before any of epoch e+1 starts. */
    int64_t epoch = 0;
    /** Serial position for `serial_stats` checks (-1 = unordered).
     * In the executor plan this is the topological index of the
     * deferred update, the order the serial replay phase applies. */
    int64_t seq = -1;
    std::vector<ParallelAccess> accesses;
};

/** One shared memory region (sizes and offsets in floats). */
struct ParallelRegion
{
    std::string name;
    int64_t size = 0;
    bool read_only = false;   ///< any write is SA603
    bool exact_cover = false; ///< write-set union must tile [0, size)
    bool ordered = false;     ///< reads need an earlier-epoch write
    bool serial_stats = false; ///< writes serialized in seq order
    /** Scatter-accumulate region (backward gradients): overlapping
     * writes are *expected* (halo rows, shared weight gradients) but
     * must come from distinct epochs whose order agrees with serial
     * (seq) order — checked as SA609. Epochs here encode per-worker
     * serial program order (a worker owns all of an image's items),
     * not global barriers; only overlapping pairs are constrained,
     * and overlaps are intra-image by construction. */
    bool ordered_accum = false;
    int64_t owner = -1; ///< owning item index, or -1 = shared
};

/** A complete static model of one parallel execution. */
struct ParallelPlan
{
    std::string name;
    std::vector<ParallelRegion> regions;
    std::vector<ParallelItem> items;
};

/** Index of the region named @p name, or -1. */
int64_t findParallelRegion(const ParallelPlan &plan,
                           const std::string &name);

/** Display name of item @p item ("item N" when unnamed/invalid). */
std::string parallelItemName(const ParallelPlan &plan, int64_t item);

/**
 * Check one ParallelPlan (SA601-SA606, SA608; see file header).
 * Total over corrupt plans: malformed indices yield diagnostics,
 * never a panic.
 */
std::vector<Diagnostic> analyzeParallelPlan(const ParallelPlan &plan);

/**
 * Model splitConv2dForwardFused for @p n images of a C x ih x iw
 * input under @p scheme. The footprints cover both kernel choices:
 * the im2col and Winograd paths write identical band regions, and
 * reads are modeled as each patch's halo rectangle (a conservative
 * contiguous hull per patch — exactly what the shadow recorder
 * logs).
 */
ParallelPlan buildSplitConvPlan(int64_t n, int64_t c, int64_t ih,
                                int64_t iw, int64_t oc,
                                const Window2d &win,
                                const SplitScheme2d &scheme);

/** Model the fused split-pool paths (image x patch items). */
ParallelPlan buildSplitPoolPlan(int64_t n, int64_t c, int64_t ih,
                                int64_t iw, const Window2d &win,
                                const SplitScheme2d &scheme);

/**
 * Model splitConv2dBackwardFused: images fan out across workers, and
 * a worker runs its image's row-band items serially ascending — so
 * the plan's epochs encode that per-image serial order. Per band:
 * grad_x scatter hulls (band-restricted, mirroring col2imViewStrided)
 * land in the `ordered_accum` grad_x region, grad_out band rows and
 * patch input hulls are read, the cached dgrad (W^T) panels are
 * shared read-only, and the per-image wgrad/bias partial accumulator
 * chains bands under the same ordered discipline. A per-image bias
 * item then reduces grad_out rows, and a per-image reduction item —
 * serialized in image order after each wave — folds the partial into
 * the shared grad_w / grad_b regions (both `ordered_accum`).
 */
ParallelPlan buildSplitConvBackwardPlan(int64_t n, int64_t c,
                                        int64_t ih, int64_t iw,
                                        int64_t oc, const Window2d &win,
                                        const SplitScheme2d &scheme);

/**
 * Model the fused split-pool backward paths: image x patch items
 * scatter-adding window gradients through each patch's input hull
 * into the `ordered_accum` grad_x region (halo rows overlap between
 * neighbouring patches of one image; a worker owns the image and
 * runs its patches serially ascending).
 */
ParallelPlan buildSplitPoolBackwardPlan(int64_t n, int64_t c,
                                        int64_t ih, int64_t iw,
                                        const Window2d &win,
                                        const SplitScheme2d &scheme);

/**
 * Model the executor's wave-parallel forward pass over @p graph.
 * @p training adds the deferred BN running-stat updates as serial
 * post-wave epochs writing the shared param slots.
 */
ParallelPlan buildExecutorWavePlan(const Graph &graph, bool training);

/**
 * The `scnn lint --parallel` battery: the executor wave plan
 * (training mode — the superset of the inference-mode model) plus a
 * split plan for every Conv2d / MaxPool2d / AvgPool2d node at an
 * (at most) @p splits_h x @p splits_w even split grid, clamped per
 * node to its output extents. Batch is modeled as min(n, 2) images:
 * image footprints are identical translates at stride
 * channels*H*W, so two suffice to prove inter-image disjointness
 * for any batch.
 */
std::vector<Diagnostic> analyzeParallelExecution(const Graph &graph,
                                                 int splits_h,
                                                 int splits_w);

/**
 * Whether the parallel-safety debug hooks (split dispatchers,
 * Executor construction) are active: compiled in for !NDEBUG builds,
 * switchable at run time with SCNN_LINT_PARALLEL=1/0. The same
 * contract as lintPlansEnabled().
 */
bool lintParallelEnabled();

} // namespace scnn

#endif // SCNN_ANALYSIS_PARALLEL_MODEL_H
