#include "analysis/diagnostics.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace scnn {

const char *
diagSeverityName(DiagSeverity severity)
{
    switch (severity) {
      case DiagSeverity::Note: return "note";
      case DiagSeverity::Warning: return "warning";
      case DiagSeverity::Error: return "error";
    }
    return "?";
}

std::string
DiagLocation::toString() const
{
    std::ostringstream os;
    bool first = true;
    auto field = [&](const char *name, int64_t value) {
        if (value < 0)
            return;
        if (!first)
            os << ' ';
        os << name << ' ' << value;
        first = false;
    };
    field("step", step);
    field("node", node);
    field("tensor", tensor);
    field("tso", tso);
    return os.str();
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << diagSeverityName(severity) << '[' << code << ']';
    const std::string where = loc.toString();
    if (!where.empty())
        os << ' ' << where;
    os << ": " << message;
    return os.str();
}

const std::vector<DiagCodeInfo> &
diagnosticCodes()
{
    static const std::vector<DiagCodeInfo> table = {
        // --- SA1xx: graph well-formedness --------------------------------
        {"SA101", DiagSeverity::Error,
         "dangling or out-of-range tensor/node/param reference"},
        {"SA102", DiagSeverity::Error,
         "tensor shape inconsistent with the producing op's geometry"},
        {"SA103", DiagSeverity::Error,
         "topological order violation (use before definition)"},
        {"SA104", DiagSeverity::Error,
         "producer/consumer cross-links disagree with node inputs"},
        {"SA105", DiagSeverity::Error,
         "graph input/output malformed (not exactly one of each)"},
        // --- SA2xx: TSO storage assignment -------------------------------
        {"SA201", DiagSeverity::Error,
         "TSO reference count mismatch or underflow"},
        {"SA202", DiagSeverity::Error,
         "illegal value-TSO sharing (not in-place ReLU or flatten "
         "view per Sec. 4.2)"},
        {"SA203", DiagSeverity::Error,
         "illegal gradient-TSO sharing (not summation-error sharing "
         "per Sec. 4.2)"},
        {"SA204", DiagSeverity::Error,
         "TSO smaller than a tensor mapped to it"},
        {"SA205", DiagSeverity::Error, "tensor without a TSO"},
        {"SA206", DiagSeverity::Error,
         "one TSO holds both a forward value and a gradient"},
        // --- SA3xx: offload/prefetch schedule ----------------------------
        {"SA301", DiagSeverity::Error,
         "offloaded TSO missing or duplicating one of the four "
         "critical moments (Sec. 4.3)"},
        {"SA302", DiagSeverity::Error,
         "offload ordering violation (before last write, after the "
         "forward pass, or sync before start)"},
        {"SA303", DiagSeverity::Error,
         "prefetch ordering violation (before the device copy is "
         "freed, in the forward pass, or sync before start)"},
        {"SA304", DiagSeverity::Error,
         "planned use of a non-resident TSO (freed before a forward "
         "reader or used before the prefetch sync)"},
        {"SA305", DiagSeverity::Error,
         "transferred TSO has no memory stream assigned"},
        {"SA306", DiagSeverity::Error,
         "cross-stream event synchronization cycle"},
        {"SA307", DiagSeverity::Error,
         "malformed plan tables (sizes disagree with the graph or "
         "storage assignment)"},
        {"SA308", DiagSeverity::Error,
         "transfer action on an out-of-range or non-offloaded TSO"},
        // --- SA4xx: static layout / first-fit pool -----------------------
        {"SA401", DiagSeverity::Error,
         "planned access outside every live interval of the TSO"},
        {"SA402", DiagSeverity::Error,
         "simultaneously-live intervals overlap in the pool"},
        {"SA403", DiagSeverity::Error,
         "planned access to a tensor without a TSO"},
        {"SA404", DiagSeverity::Error,
         "interval unplaced or outside the pool high-water mark"},
        {"SA405", DiagSeverity::Error,
         "interval byte size disagrees with its TSO"},
        // --- SA5xx: split-scheme geometry --------------------------------
        {"SA501", DiagSeverity::Error,
         "split pieces do not tile the output partition exactly"},
        {"SA502", DiagSeverity::Error,
         "split input range outside the legal [lb, ub] interval of "
         "Eqs. 1-2"},
        {"SA503", DiagSeverity::Error,
         "split padding or patch extent disagrees with the Eq. 5 "
         "halo formulas"},
        {"SA504", DiagSeverity::Error,
         "slice/concat geometry invalid (out of bounds or not a "
         "tiling)"},
        // --- SA6xx: parallel execution safety -----------------------------
        {"SA601", DiagSeverity::Error,
         "write sets of two work items in the same wave overlap"},
        {"SA602", DiagSeverity::Error,
         "work-item access outside the bounds of its region"},
        {"SA603", DiagSeverity::Error,
         "write to a read-only shared region (weight panels, "
         "Winograd U tensors, cached panels)"},
        {"SA604", DiagSeverity::Error,
         "access to a scratch-arena region owned by another work "
         "item"},
        {"SA605", DiagSeverity::Error,
         "executor wave reads a tensor not produced by an earlier "
         "wave (happens-before violation)"},
        {"SA606", DiagSeverity::Error,
         "deferred BN running-stat update concurrent or out of "
         "topological order (determinism contract violation)"},
        {"SA607", DiagSeverity::Error,
         "shadow-recorded access escapes the statically predicted "
         "footprint (analyzer bug)"},
        {"SA608", DiagSeverity::Error,
         "work-item write sets do not cover an exact-cover region "
         "(gap in the output tiling)"},
        {"SA609", DiagSeverity::Error,
         "halo-accumulation writes concurrent or out of serial order "
         "(backward scatter-add determinism contract violation)"},
    };
    return table;
}

const DiagCodeInfo *
findDiagnosticCode(const std::string &code)
{
    for (const auto &info : diagnosticCodes())
        if (code == info.code)
            return &info;
    return nullptr;
}

void
DiagnosticSink::add(const std::string &code, DiagLocation loc,
                    std::string message)
{
    const DiagCodeInfo *info = findDiagnosticCode(code);
    SCNN_CHECK(info != nullptr,
               "unregistered diagnostic code " << code);
    add(code, info->default_severity, loc, std::move(message));
}

void
DiagnosticSink::add(const std::string &code, DiagSeverity severity,
                    DiagLocation loc, std::string message)
{
    SCNN_CHECK(findDiagnosticCode(code) != nullptr,
               "unregistered diagnostic code " << code);
    items_.push_back({code, severity, loc, std::move(message)});
}

bool
DiagnosticSink::hasErrors() const
{
    return scnn::hasErrors(items_);
}

int
countBySeverity(const std::vector<Diagnostic> &diags,
                DiagSeverity severity)
{
    int n = 0;
    for (const auto &d : diags)
        n += d.severity == severity ? 1 : 0;
    return n;
}

bool
hasErrors(const std::vector<Diagnostic> &diags)
{
    for (const auto &d : diags)
        if (d.severity == DiagSeverity::Error)
            return true;
    return false;
}

std::string
renderDiagnosticsText(const std::vector<Diagnostic> &diags)
{
    std::ostringstream os;
    for (const auto &d : diags)
        os << d.toString() << '\n';
    const int errors = countBySeverity(diags, DiagSeverity::Error);
    const int warnings = countBySeverity(diags, DiagSeverity::Warning);
    if (diags.empty())
        os << "no findings\n";
    else
        os << errors << (errors == 1 ? " error, " : " errors, ")
           << warnings << (warnings == 1 ? " warning" : " warnings")
           << '\n';
    return os.str();
}

namespace {

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    return os.str();
}

} // namespace

std::string
renderDiagnosticsJson(const std::vector<Diagnostic> &diags,
                      const std::string &context)
{
    std::ostringstream os;
    os << "{\n";
    if (!context.empty())
        os << "  \"context\": \"" << jsonEscape(context) << "\",\n";
    os << "  \"errors\": "
       << countBySeverity(diags, DiagSeverity::Error) << ",\n"
       << "  \"warnings\": "
       << countBySeverity(diags, DiagSeverity::Warning) << ",\n"
       << "  \"notes\": "
       << countBySeverity(diags, DiagSeverity::Note) << ",\n"
       << "  \"findings\": [";
    for (size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        os << (i ? ",\n    {" : "\n    {");
        os << "\"code\": \"" << jsonEscape(d.code) << "\", "
           << "\"severity\": \"" << diagSeverityName(d.severity)
           << "\", ";
        if (d.loc.step >= 0)
            os << "\"step\": " << d.loc.step << ", ";
        if (d.loc.node >= 0)
            os << "\"node\": " << d.loc.node << ", ";
        if (d.loc.tensor >= 0)
            os << "\"tensor\": " << d.loc.tensor << ", ";
        if (d.loc.tso >= 0)
            os << "\"tso\": " << d.loc.tso << ", ";
        os << "\"message\": \"" << jsonEscape(d.message) << "\"}";
    }
    os << (diags.empty() ? "]\n" : "\n  ]\n") << "}\n";
    return os.str();
}

} // namespace scnn
