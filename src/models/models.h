/**
 * @file
 * Model zoo: the four architectures the paper evaluates (AlexNet,
 * VGG-19, ResNet-18, ResNet-50) as computation-graph builders, in
 * CIFAR (32x32) and ImageNet (224x224) variants, with a width
 * multiplier for CPU-scale accuracy runs.
 *
 * Every builder marks Split-CNN cut points (candidate join
 * boundaries): after each conv/pool stage for VGG/AlexNet and after
 * each residual block for ResNet (paper footnote 3).
 */
#ifndef SCNN_MODELS_MODELS_H
#define SCNN_MODELS_MODELS_H

#include "graph/graph.h"

namespace scnn {

/** Common knobs for all model builders. */
struct ModelConfig
{
    int64_t batch = 1;       ///< batch size N
    int64_t image = 32;      ///< input spatial extent (square)
    int64_t in_channels = 3; ///< input channels
    int64_t classes = 10;    ///< classifier outputs
    double width = 1.0;      ///< channel multiplier (CPU-scale runs)
    bool batch_norm = true;  ///< insert BN after convolutions

    /** Scale a channel count by the width multiplier (min 4). */
    int64_t scaled(int64_t channels) const;
};

/**
 * VGG-19: 16 convs in 5 stages (64,64 / 128,128 / 256x4 / 512x4 /
 * 512x4) each followed by 2x2/2 max-pool. The CIFAR variant
 * (image == 32) uses a single FC classifier; larger inputs get the
 * 4096-4096-classes head scaled by width.
 */
Graph buildVgg19(const ModelConfig &config);

/** ResNet-18: basic blocks, stage depths {2, 2, 2, 2}. */
Graph buildResNet18(const ModelConfig &config);

/** ResNet-50: bottleneck blocks, stage depths {3, 4, 6, 3}. */
Graph buildResNet50(const ModelConfig &config);

/**
 * AlexNet (ImageNet layout: 11x11/4 stem); requires image >= 64.
 */
Graph buildAlexNet(const ModelConfig &config);

/** Named lookup used by benches: "vgg19", "resnet18", ... */
Graph buildModel(const std::string &name, const ModelConfig &config);

} // namespace scnn

#endif // SCNN_MODELS_MODELS_H
