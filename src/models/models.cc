#include "models/models.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/logging.h"

namespace scnn {

int64_t
ModelConfig::scaled(int64_t channels) const
{
    const auto s = static_cast<int64_t>(channels * width);
    return std::max<int64_t>(4, s);
}

namespace {

/** conv -> (BN) -> ReLU block shared by VGG and AlexNet. */
TensorId
convBnRelu(GraphBuilder &b, const ModelConfig &cfg, TensorId x,
           int64_t channels, const Window2d &win, const std::string &name)
{
    // When BN follows, the conv bias is redundant (standard practice).
    x = b.conv2d(x, channels, win, !cfg.batch_norm, name);
    if (cfg.batch_norm)
        x = b.batchNorm(x, name + ".bn");
    return b.relu(x, name + ".relu");
}

} // namespace

Graph
buildVgg19(const ModelConfig &cfg)
{
    GraphBuilder b;
    TensorId x = b.input(
        Shape{cfg.batch, cfg.in_channels, cfg.image, cfg.image});

    const std::vector<std::vector<int64_t>> stages = {
        {64, 64}, {128, 128}, {256, 256, 256, 256},
        {512, 512, 512, 512}, {512, 512, 512, 512}};

    int conv_idx = 0;
    for (size_t si = 0; si < stages.size(); ++si) {
        for (int64_t ch : stages[si]) {
            x = convBnRelu(b, cfg, x, cfg.scaled(ch),
                           Window2d::square(3, 1, 1),
                           "conv" + std::to_string(++conv_idx));
            b.markCutPoint(x);
        }
        x = b.maxPool(x, Window2d::square(2, 2, 0),
                      "pool" + std::to_string(si + 1));
        b.markCutPoint(x);
    }

    x = b.flatten(x);
    if (cfg.image <= 32) {
        x = b.linear(x, cfg.classes, true, "fc");
    } else {
        x = b.relu(b.linear(x, cfg.scaled(4096), true, "fc1"));
        x = b.relu(b.linear(x, cfg.scaled(4096), true, "fc2"));
        x = b.linear(x, cfg.classes, true, "fc3");
    }
    return b.build();
}

Graph
buildResNet18(const ModelConfig &cfg)
{
    GraphBuilder b;
    TensorId x = b.input(
        Shape{cfg.batch, cfg.in_channels, cfg.image, cfg.image});

    const int64_t base = cfg.scaled(64);
    if (cfg.image >= 64) {
        // ImageNet stem: 7x7/2 conv + 3x3/2 max-pool.
        x = b.conv2d(x, base, Window2d{7, 7, 2, 2, 3, 3, 3, 3}, false,
                     "stem.conv");
        x = b.batchNorm(x, "stem.bn");
        x = b.relu(x, "stem.relu");
        x = b.maxPool(x, Window2d{3, 3, 2, 2, 1, 1, 1, 1},
                      "stem.pool");
    } else {
        // CIFAR stem: 3x3/1 conv.
        x = b.conv2d(x, base, Window2d::square(3, 1, 1), false,
                     "stem.conv");
        x = b.batchNorm(x, "stem.bn");
        x = b.relu(x, "stem.relu");
    }
    b.markCutPoint(x);

    const std::vector<int64_t> channels = {base, cfg.scaled(128),
                                           cfg.scaled(256),
                                           cfg.scaled(512)};
    int64_t prev_ch = base;
    for (int stage = 0; stage < 4; ++stage) {
        for (int blk = 0; blk < 2; ++blk) {
            const int64_t stride =
                (stage > 0 && blk == 0) ? 2 : 1;
            const std::string name = "layer" + std::to_string(stage + 1) +
                                     ".block" + std::to_string(blk);
            TensorId identity = x;
            TensorId y = b.conv2d(
                x, channels[stage],
                Window2d{3, 3, stride, stride, 1, 1, 1, 1}, false,
                name + ".conv1");
            y = b.batchNorm(y, name + ".bn1");
            y = b.relu(y, name + ".relu1");
            y = b.conv2d(y, channels[stage], Window2d::square(3, 1, 1),
                         false, name + ".conv2");
            y = b.batchNorm(y, name + ".bn2");
            if (stride != 1 || prev_ch != channels[stage]) {
                identity = b.conv2d(
                    identity, channels[stage],
                    Window2d{1, 1, stride, stride, 0, 0, 0, 0}, false,
                    name + ".down.conv");
                identity = b.batchNorm(identity, name + ".down.bn");
            }
            x = b.relu(b.add({y, identity}, name + ".add"),
                       name + ".relu2");
            prev_ch = channels[stage];
            b.markCutPoint(x);
        }
    }

    x = b.globalAvgPool(x, "gap");
    x = b.flatten(x);
    x = b.linear(x, cfg.classes, true, "fc");
    return b.build();
}

Graph
buildResNet50(const ModelConfig &cfg)
{
    GraphBuilder b;
    TensorId x = b.input(
        Shape{cfg.batch, cfg.in_channels, cfg.image, cfg.image});

    const int64_t base = cfg.scaled(64);
    if (cfg.image >= 64) {
        x = b.conv2d(x, base, Window2d{7, 7, 2, 2, 3, 3, 3, 3}, false,
                     "stem.conv");
        x = b.batchNorm(x, "stem.bn");
        x = b.relu(x, "stem.relu");
        x = b.maxPool(x, Window2d{3, 3, 2, 2, 1, 1, 1, 1},
                      "stem.pool");
    } else {
        x = b.conv2d(x, base, Window2d::square(3, 1, 1), false,
                     "stem.conv");
        x = b.batchNorm(x, "stem.bn");
        x = b.relu(x, "stem.relu");
    }
    b.markCutPoint(x);

    const std::vector<int> depths = {3, 4, 6, 3};
    const std::vector<int64_t> widths = {base, cfg.scaled(128),
                                         cfg.scaled(256),
                                         cfg.scaled(512)};
    int64_t prev_ch = base;
    for (int stage = 0; stage < 4; ++stage) {
        for (int blk = 0; blk < depths[stage]; ++blk) {
            const int64_t stride =
                (stage > 0 && blk == 0) ? 2 : 1;
            const int64_t mid = widths[stage];
            const int64_t out_ch = mid * 4;
            const std::string name = "layer" + std::to_string(stage + 1) +
                                     ".block" + std::to_string(blk);
            TensorId identity = x;
            TensorId y =
                b.conv2d(x, mid, Window2d::square(1, 1, 0), false,
                         name + ".conv1");
            y = b.batchNorm(y, name + ".bn1");
            y = b.relu(y, name + ".relu1");
            y = b.conv2d(y, mid,
                         Window2d{3, 3, stride, stride, 1, 1, 1, 1},
                         false, name + ".conv2");
            y = b.batchNorm(y, name + ".bn2");
            y = b.relu(y, name + ".relu2");
            y = b.conv2d(y, out_ch, Window2d::square(1, 1, 0), false,
                         name + ".conv3");
            y = b.batchNorm(y, name + ".bn3");
            if (stride != 1 || prev_ch != out_ch) {
                identity = b.conv2d(
                    identity, out_ch,
                    Window2d{1, 1, stride, stride, 0, 0, 0, 0}, false,
                    name + ".down.conv");
                identity = b.batchNorm(identity, name + ".down.bn");
            }
            x = b.relu(b.add({y, identity}, name + ".add"),
                       name + ".relu3");
            prev_ch = out_ch;
            b.markCutPoint(x);
        }
    }

    x = b.globalAvgPool(x, "gap");
    x = b.flatten(x);
    x = b.linear(x, cfg.classes, true, "fc");
    return b.build();
}

Graph
buildAlexNet(const ModelConfig &cfg)
{
    SCNN_REQUIRE(cfg.image >= 64,
                 "AlexNet stem needs image >= 64, got " << cfg.image);
    GraphBuilder b;
    TensorId x = b.input(
        Shape{cfg.batch, cfg.in_channels, cfg.image, cfg.image});

    x = convBnRelu(b, cfg, x, cfg.scaled(64),
                   Window2d{11, 11, 4, 4, 2, 2, 2, 2}, "conv1");
    b.markCutPoint(x);
    x = b.maxPool(x, Window2d{3, 3, 2, 2, 0, 0, 0, 0}, "pool1");
    b.markCutPoint(x);
    x = convBnRelu(b, cfg, x, cfg.scaled(192), Window2d::square(5, 1, 2),
                   "conv2");
    b.markCutPoint(x);
    x = b.maxPool(x, Window2d{3, 3, 2, 2, 0, 0, 0, 0}, "pool2");
    b.markCutPoint(x);
    x = convBnRelu(b, cfg, x, cfg.scaled(384), Window2d::square(3, 1, 1),
                   "conv3");
    b.markCutPoint(x);
    x = convBnRelu(b, cfg, x, cfg.scaled(256), Window2d::square(3, 1, 1),
                   "conv4");
    b.markCutPoint(x);
    x = convBnRelu(b, cfg, x, cfg.scaled(256), Window2d::square(3, 1, 1),
                   "conv5");
    b.markCutPoint(x);
    x = b.maxPool(x, Window2d{3, 3, 2, 2, 0, 0, 0, 0}, "pool5");
    b.markCutPoint(x);

    x = b.flatten(x);
    x = b.relu(b.linear(x, cfg.scaled(4096), true, "fc1"));
    x = b.relu(b.linear(x, cfg.scaled(4096), true, "fc2"));
    x = b.linear(x, cfg.classes, true, "fc3");
    return b.build();
}

Graph
buildModel(const std::string &name, const ModelConfig &cfg)
{
    if (name == "vgg19")
        return buildVgg19(cfg);
    if (name == "resnet18")
        return buildResNet18(cfg);
    if (name == "resnet50")
        return buildResNet50(cfg);
    if (name == "alexnet")
        return buildAlexNet(cfg);
    SCNN_FATAL("unknown model '" << name << "'");
}

} // namespace scnn
